package analysis

import (
	"runtime"
	"sync"

	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
)

// Point is one parameter combination of a sweep.
type Point struct {
	// Kind is the torus topology.
	Kind grid.Kind
	// M, N are the torus dimensions.
	M, N int
	// Colors is the palette size |C|.
	Colors int
}

// Record is the outcome of running a tight construction and its
// verification at one sweep point.
type Record struct {
	Point Point
	// Construction is the construction name, or "error: …" when it could
	// not be built.
	Construction string
	// SeedSize is |Sk|.
	SeedSize int
	// LowerBound is the paper's lower bound for the topology and size.
	LowerBound int
	// ConditionsOK reports whether the tight-padding hypotheses hold.
	ConditionsOK bool
	// IsDynamo and Monotone are the simulation-backed judgements.
	IsDynamo bool
	Monotone bool
	// Rounds is the measured convergence time; Predicted is the paper
	// formula (Theorem 7 or 8).
	Rounds    int
	Predicted int
	// Err holds the construction error, if any.
	Err error
}

// RunPoint builds the minimum construction for the point and verifies it.
func RunPoint(p Point) Record {
	rec := Record{
		Point:      p,
		LowerBound: dynamo.LowerBound(p.Kind, grid.MustDims(p.M, p.N)),
		Predicted:  dynamo.PredictedRounds(p.Kind, grid.MustDims(p.M, p.N)),
	}
	c, err := dynamo.Minimum(p.Kind, p.M, p.N, 1, color.MustPalette(p.Colors))
	if err != nil {
		rec.Err = err
		rec.Construction = "error"
		return rec
	}
	rec.Construction = c.Name
	rec.SeedSize = c.SeedSize()
	rec.ConditionsOK = dynamo.CheckTheoremConditions(c) == nil
	v := dynamo.Verify(c)
	rec.IsDynamo = v.IsDynamo
	rec.Monotone = v.Monotone
	rec.Rounds = v.Rounds
	return rec
}

// Sweep runs fn over every point, spreading the work over `workers`
// goroutines (GOMAXPROCS when workers <= 0).  The result order matches the
// input order.
//
// Engines are not constructed per point: the verification path runs through
// sim.EngineOf, a process-wide cache keyed by (topology, rule) value, so
// every point over the same topology — across all sweep workers — shares
// one engine and its pooled run buffers instead of paying construction and
// warm-up allocations per point.
func Sweep(points []Point, workers int, fn func(Point) Record) []Record {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	out := make([]Record, len(points))
	if workers <= 1 {
		for i, p := range points {
			out[i] = fn(p)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(points[i])
			}
		}()
	}
	for i := range points {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// GridPoints builds the cross product of sizes (given as [m, n] pairs) and
// palette sizes for one topology.
func GridPoints(kind grid.Kind, sizes [][2]int, palettes []int) []Point {
	var out []Point
	for _, s := range sizes {
		for _, k := range palettes {
			out = append(out, Point{Kind: kind, M: s[0], N: s[1], Colors: k})
		}
	}
	return out
}

// DefaultSizes is the size sweep used by the experiment tables: small
// enough to run in seconds, large enough to show the asymptotic shape.
func DefaultSizes() [][2]int {
	return [][2]int{{4, 4}, {5, 5}, {6, 6}, {7, 7}, {8, 8}, {9, 9}, {12, 12}, {16, 16}, {6, 9}, {9, 6}, {7, 12}, {16, 8}}
}
