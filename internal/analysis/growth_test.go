package analysis

import (
	"strconv"
	"testing"

	"repro/internal/color"
	"repro/internal/dynamo"
)

func TestGrowthCurveMonotoneDynamo(t *testing.T) {
	c, err := dynamo.MeshMinimum(9, 9, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	curve := GrowthCurve(c.Topology, c.Coloring, 1)
	if curve[0] != c.SeedSize() {
		t.Errorf("curve starts at %d, want the seed size %d", curve[0], c.SeedSize())
	}
	if curve[len(curve)-1] != c.Topology.Dims().N() {
		t.Errorf("curve ends at %d, want %d", curve[len(curve)-1], c.Topology.Dims().N())
	}
	if !IsNonDecreasing(curve) {
		t.Error("a monotone dynamo must have a non-decreasing growth curve")
	}
	// The number of rounds equals the verified convergence time.
	if len(curve)-1 != dynamo.Verify(c).Rounds {
		t.Errorf("curve has %d rounds, verification reports %d", len(curve)-1, dynamo.Verify(c).Rounds)
	}
}

func TestGrowthCurveNonDynamoPlateaus(t *testing.T) {
	c, err := dynamo.BlockedCross(8, 8, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	curve := GrowthCurve(c.Topology, c.Coloring, 1)
	if curve[len(curve)-1] == c.Topology.Dims().N() {
		t.Error("the blocked configuration must not reach full coverage")
	}
}

func TestIncrementsAndHelpers(t *testing.T) {
	curve := []int{3, 5, 8, 8, 10}
	inc := Increments(curve)
	want := []int{2, 3, 0, 2}
	for i := range want {
		if inc[i] != want[i] {
			t.Fatalf("Increments = %v, want %v", inc, want)
		}
	}
	if Increments([]int{7}) != nil {
		t.Error("single-point curve has no increments")
	}
	if !IsNonDecreasing(curve) {
		t.Error("curve should be non-decreasing")
	}
	if IsNonDecreasing([]int{3, 2}) {
		t.Error("decreasing curve misclassified")
	}
	if PeakIncrement(curve) != 3 {
		t.Errorf("PeakIncrement = %d, want 3", PeakIncrement(curve))
	}
	if PeakIncrement([]int{5}) != 0 {
		t.Error("PeakIncrement of a flat curve should be 0")
	}
	if sumInts([]int{1, 2, 3}) != 6 {
		t.Error("sumInts wrong")
	}
}

func TestMeshWaveIsFasterThanCordalisSweep(t *testing.T) {
	// The Section III.D contrast: on same-size tori the mesh wave converges
	// in far fewer rounds and has a much larger peak per-round growth than
	// the cordalis row-by-row sweep.
	mesh, err := dynamo.MeshMinimum(9, 9, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	cord, err := dynamo.CordalisMinimum(9, 9, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	meshCurve := GrowthCurve(mesh.Topology, mesh.Coloring, 1)
	cordCurve := GrowthCurve(cord.Topology, cord.Coloring, 1)
	if len(meshCurve) >= len(cordCurve) {
		t.Errorf("mesh should converge faster: %d vs %d rounds", len(meshCurve)-1, len(cordCurve)-1)
	}
	if PeakIncrement(meshCurve) <= PeakIncrement(cordCurve) {
		t.Errorf("mesh peak growth %d should exceed cordalis peak growth %d",
			PeakIncrement(meshCurve), PeakIncrement(cordCurve))
	}
}

func TestE17SubBoundSearchTable(t *testing.T) {
	if testing.Short() {
		t.Skip("random search is slow; skipped in -short mode")
	}
	tbl := E17SubBoundSearch()
	violated := 0
	for _, row := range tbl.Rows {
		if row[4] == "yes" {
			violated++
			m, _ := strconv.Atoi(row[0])
			n, _ := strconv.Atoi(row[1])
			if m >= 6 && n >= 6 {
				t.Errorf("unexpected sub-bound monotone dynamo on a %dx%d torus", m, n)
			}
		}
	}
	if violated == 0 {
		t.Error("the search should reproduce the small-torus counterexamples")
	}
}

func TestE18PropagationPattern(t *testing.T) {
	tbl := E18PropagationPattern()
	if len(tbl.Rows) < 5 {
		t.Fatalf("unexpected table %+v", tbl)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "peak per round" {
		t.Fatalf("unexpected last row %v", last)
	}
	total := tbl.Rows[len(tbl.Rows)-2]
	// Both topologies recolor all non-seed vertices: 81-16 and 81-10.
	if total[1] != "65" || total[2] != "71" {
		t.Errorf("totals = %v, want 65 and 71", total)
	}
}
