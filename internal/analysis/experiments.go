package analysis

import (
	"fmt"
	"time"

	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/graphs"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tvg"
)

// Experiment is one entry of the per-experiment index in DESIGN.md: a
// generator that reproduces one table or figure of the paper.
type Experiment struct {
	// ID is the experiment identifier (E01..E18).
	ID string
	// Title is a one-line description.
	Title string
	// Paper describes what the paper reports for this experiment.
	Paper string
	// Run regenerates the experiment and returns its table.
	Run func() *Table
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E01", "Toroidal mesh lower bound and tightness (Theorem 1)", "|Sk| >= m+n-2, achieved exactly", E01MeshBounds},
		{"E02", "Figure 1: a monotone dynamo of size m+n-2 on a 9x9 mesh", "a dynamo of 16 black vertices", E02Figure1},
		{"E03", "Theorem 2 construction across sizes and palettes", "tight monotone dynamos with |C| >= 4", E03Theorem2},
		{"E04", "Figures 3-4: configurations that are not dynamos", "blocked and frozen configurations", E04Counterexamples},
		{"E05", "Torus cordalis bounds (Theorems 3-4)", "|Sk| = n+1 tight", E05Cordalis},
		{"E06", "Torus serpentinus bounds (Theorems 5-6)", "|Sk| = min(m,n)+1 tight", E06Serpentinus},
		{"E07", "Round count on the mesh (Theorem 7)", "2*max(ceil((n-1)/2)-1, ceil((m-1)/2)-1)+1", E07MeshRounds},
		{"E08", "Round count on the spiral tori (Theorem 8)", "(floor((m-1)/2)-1)*n + ceil(n/2) or +1", E08SpiralRounds},
		{"E09", "Figure 5: 5x5 mesh recoloring-time matrix", "exact matrix", E09Figure5},
		{"E10", "Figure 6: 5x5 cordalis recoloring-time matrix", "exact matrix", E10Figure6},
		{"E11", "Proposition 3: colors needed vs min(m,n)", "|C| >= N for 1 < N <= 3", E11Proposition3},
		{"E12", "SMP vs the rules of [15] (Remark 1, Propositions 1-2)", "SMP restricted to 2 colors differs from [15]", E12RuleComparison},
		{"E13", "Extension: SMP and TSS baselines on scale-free graphs", "open problem in the conclusions", E13ScaleFree},
		{"E14", "Extension: dynamos under intermittent links", "open problem in the conclusions", E14TimeVarying},
		{"E15", "Engine scalability (parallel stepping)", "not in the paper; engineering harness", E15Scalability},
		{"E16", "Ablation: padding designs and the Theorem 2 hypothesis gap", "design-choice ablation", E16PaddingAblation},
		{"E17", "Search for monotone dynamos below the Theorem 1 bound", "Theorem 1 claims none exist", E17SubBoundSearch},
		{"E18", "Propagation pattern: diagonal wave vs row-by-row sweep (Section III.D)", "corners-to-center vs row propagation", E18PropagationPattern},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func pal(k int) color.Palette { return color.MustPalette(k) }

// E01MeshBounds verifies Theorem 1 on a size sweep: the constructed dynamo
// matches the m+n-2 lower bound, and random seeds one vertex below the bound
// essentially never take over.
func E01MeshBounds() *Table {
	t := NewTable("E01  Toroidal mesh: dynamo size vs the Theorem 1 lower bound",
		"m", "n", "lower bound", "construction size", "monotone dynamo",
		"undersized random seeds: dynamo", "undersized random seeds: monotone dynamo")
	sizes := [][2]int{{4, 4}, {5, 5}, {6, 6}, {7, 7}, {8, 8}, {9, 9}, {12, 12}, {16, 16}, {6, 9}, {12, 7}}
	for _, s := range sizes {
		m, n := s[0], s[1]
		rec := RunPoint(Point{Kind: grid.KindToroidalMesh, M: m, N: n, Colors: 5})
		src := rng.New(uint64(m*100 + n))
		topo := grid.MustNew(grid.KindToroidalMesh, m, n)
		wins, monotoneWins := 0, 0
		const trials = 15
		for i := 0; i < trials; i++ {
			c := dynamo.RandomSeedColoring(topo, rec.LowerBound-1, 1, pal(5), func(b int) int { return src.Intn(b) })
			v := dynamo.VerifyColoring(topo, c, 1)
			if v.IsDynamo {
				wins++
				if v.Monotone {
					monotoneWins++
				}
			}
		}
		t.AddRow(itoa(m), itoa(n), itoa(rec.LowerBound), itoa(rec.SeedSize),
			boolMark(rec.IsDynamo && rec.Monotone),
			fmt.Sprintf("%d/%d", wins, trials), fmt.Sprintf("%d/%d", monotoneWins, trials))
	}
	t.Note = "Theorem 1 bounds monotone dynamos; our constructions always match it exactly. Deviation: on tori with min(m,n) <= 5 random search even finds *monotone* dynamos below the bound (e.g. size 4 on the 4x4 mesh), so the bound does not hold for small tori as stated — see EXPERIMENTS.md. For min(m,n) >= 6 no undersized monotone dynamo was found."
	return t
}

// E02Figure1 reproduces Figure 1: a monotone dynamo of 16 vertices on the
// 9x9 toroidal mesh.
func E02Figure1() *Table {
	t := NewTable("E02  Figure 1: monotone dynamo of size m+n-2 on a 9x9 toroidal mesh",
		"quantity", "paper", "measured")
	c, err := dynamo.Figure1(1, pal(5))
	if err != nil {
		t.Note = "construction failed: " + err.Error()
		return t
	}
	v := dynamo.Verify(c)
	t.AddRow("seed size", "16", itoa(c.SeedSize()))
	t.AddRow("is a dynamo", "yes", boolMark(v.IsDynamo))
	t.AddRow("is monotone", "yes", boolMark(v.Monotone))
	t.AddRow("rounds to monochromatic", "-", itoa(v.Rounds))
	return t
}

// E03Theorem2 sweeps sizes and palettes for the Theorem 2 construction,
// reporting whether the padding hypotheses hold and whether the
// configuration is a monotone dynamo.
func E03Theorem2() *Table {
	t := NewTable("E03  Theorem 2 construction: tight monotone dynamos on the toroidal mesh",
		"m", "n", "|C|", "built", "size", "conditions hold", "monotone dynamo", "rounds")
	sizes := [][2]int{{4, 4}, {5, 5}, {6, 6}, {7, 7}, {9, 9}, {12, 12}, {6, 9}, {9, 6}, {7, 12}}
	for _, s := range sizes {
		for _, colors := range []int{4, 5, 6} {
			rec := RunPoint(Point{Kind: grid.KindToroidalMesh, M: s[0], N: s[1], Colors: colors})
			if rec.Err != nil {
				t.AddRow(itoa(s[0]), itoa(s[1]), itoa(colors), "no", "-", "-", "-", "-")
				continue
			}
			t.AddRow(itoa(s[0]), itoa(s[1]), itoa(colors), "yes", itoa(rec.SeedSize),
				boolMark(rec.ConditionsOK), boolMark(rec.IsDynamo && rec.Monotone), itoa(rec.Rounds))
		}
	}
	t.Note = "\"built=no\" rows are sizes where no padding with that palette satisfies the hypotheses plus seed safety (e.g. 4 colors with m ≡ n ≡ 2 mod 3); the paper's Figure 2 pattern is not specified precisely enough to resolve them"
	return t
}

// E04Counterexamples reproduces the Figure 3/4 style configurations that are
// not dynamos.
func E04Counterexamples() *Table {
	t := NewTable("E04  Non-dynamo configurations (Figures 3 and 4)",
		"configuration", "seed size", "reaches monochromatic", "rounds simulated", "stuck reason")
	if c, err := dynamo.BlockedCross(8, 8, 1, pal(5)); err == nil {
		v := dynamo.Verify(c)
		t.AddRow(c.Name, itoa(c.SeedSize()), boolMark(v.IsDynamo), itoa(v.Rounds), "planted 2x2 foreign block never recolors")
	}
	if c, err := dynamo.FrozenTiling(8, 8, 1, pal(4)); err == nil {
		v := dynamo.Verify(c)
		t.AddRow(c.Name, itoa(c.SeedSize()), boolMark(v.IsDynamo), itoa(v.Rounds), "every vertex sees a tie or its own pair: no recoloring at all")
	}
	if c, err := dynamo.UndersizedSeed(8, 8, 1, pal(5)); err == nil {
		v := dynamo.Verify(c)
		t.AddRow(c.Name, itoa(c.SeedSize()), boolMark(v.IsDynamo), itoa(v.Rounds), "seed below the Theorem 1 bound cannot reach the last columns")
	}
	return t
}

// E05Cordalis verifies Theorems 3-4 on the torus cordalis.
func E05Cordalis() *Table {
	t := NewTable("E05  Torus cordalis: dynamo size vs the Theorem 3 lower bound",
		"m", "n", "lower bound n+1", "construction size", "conditions hold", "monotone dynamo", "rounds", "Theorem 8 prediction")
	sizes := [][2]int{{4, 4}, {5, 5}, {6, 6}, {7, 7}, {8, 8}, {9, 9}, {9, 5}, {6, 8}, {12, 6}, {7, 12}}
	for _, s := range sizes {
		rec := RunPoint(Point{Kind: grid.KindTorusCordalis, M: s[0], N: s[1], Colors: 5})
		if rec.Err != nil {
			t.AddRow(itoa(s[0]), itoa(s[1]), itoa(rec.LowerBound), "error", "-", "-", "-", itoa(rec.Predicted))
			continue
		}
		t.AddRow(itoa(s[0]), itoa(s[1]), itoa(rec.LowerBound), itoa(rec.SeedSize),
			boolMark(rec.ConditionsOK), boolMark(rec.IsDynamo && rec.Monotone), itoa(rec.Rounds), itoa(rec.Predicted))
	}
	return t
}

// E06Serpentinus verifies Theorems 5-6 on the torus serpentinus, covering
// both the row-seeded (n <= m) and column-seeded (m < n) variants.
func E06Serpentinus() *Table {
	t := NewTable("E06  Torus serpentinus: dynamo size vs the Theorem 5 lower bound",
		"m", "n", "seed", "lower bound N+1", "construction size", "conditions hold", "monotone dynamo", "rounds")
	sizes := [][2]int{{4, 4}, {5, 5}, {6, 6}, {7, 7}, {9, 9}, {9, 6}, {7, 4}, {4, 7}, {6, 9}, {8, 12}}
	for _, s := range sizes {
		rec := RunPoint(Point{Kind: grid.KindTorusSerpentinus, M: s[0], N: s[1], Colors: 5})
		variant := "row"
		if s[0] < s[1] {
			variant = "column"
		}
		if rec.Err != nil {
			t.AddRow(itoa(s[0]), itoa(s[1]), variant, itoa(rec.LowerBound), "error", "-", "-", "-")
			continue
		}
		t.AddRow(itoa(s[0]), itoa(s[1]), variant, itoa(rec.LowerBound), itoa(rec.SeedSize),
			boolMark(rec.ConditionsOK), boolMark(rec.IsDynamo && rec.Monotone), itoa(rec.Rounds))
	}
	return t
}

// E07MeshRounds compares measured convergence times on the mesh against the
// Theorem 7 formula, for both the full-cross configuration (which the
// formula matches exactly on square tori) and the Theorem 2 minimum
// configuration.
func E07MeshRounds() *Table {
	t := NewTable("E07  Mesh convergence time vs Theorem 7",
		"m", "n", "Theorem 7 formula", "full-cross measured", "exact full-cross formula", "Theorem-2 config measured")
	sizes := [][2]int{{5, 5}, {7, 7}, {9, 9}, {11, 11}, {15, 15}, {6, 8}, {8, 6}, {9, 13}, {16, 16}}
	for _, s := range sizes {
		m, n := s[0], s[1]
		d := grid.MustDims(m, n)
		formula := dynamo.PredictedRoundsMesh(d)
		exact := dynamo.ExactRoundsFullCross(d)
		crossRounds, minRounds := -1, -1
		if c, err := dynamo.FullCross(m, n, 1, pal(5)); err == nil {
			crossRounds = dynamo.Verify(c).Rounds
		}
		if c, err := dynamo.MeshMinimum(m, n, 1, pal(5)); err == nil {
			minRounds = dynamo.Verify(c).Rounds
		}
		t.AddRow(itoa(m), itoa(n), itoa(formula), itoa(crossRounds), itoa(exact), itoa(minRounds))
	}
	t.Note = "the Theorem 7 formula matches the full cross exactly on square tori; on rectangular tori the exact value is ceil((m-1)/2)+ceil((n-1)/2)-1, and the minimum (m+n-2) configuration needs one extra round"
	return t
}

// E08SpiralRounds compares measured convergence times on the cordalis and
// serpentinus against the Theorem 8 formula.
func E08SpiralRounds() *Table {
	t := NewTable("E08  Spiral tori convergence time vs Theorem 8",
		"topology", "m", "n", "m parity", "Theorem 8 formula", "measured rounds")
	sizes := [][2]int{{5, 5}, {7, 5}, {9, 5}, {6, 5}, {8, 5}, {7, 7}, {9, 9}, {6, 6}, {8, 8}, {11, 7}}
	for _, kind := range []grid.Kind{grid.KindTorusCordalis, grid.KindTorusSerpentinus} {
		for _, s := range sizes {
			m, n := s[0], s[1]
			d := grid.MustDims(m, n)
			formula := dynamo.PredictedRounds(kind, d)
			rounds := -1
			if c, err := dynamo.Minimum(kind, m, n, 1, pal(5)); err == nil {
				rounds = dynamo.Verify(c).Rounds
			}
			parity := "odd"
			if m%2 == 0 {
				parity = "even"
			}
			t.AddRow(kind.String(), itoa(m), itoa(n), parity, itoa(formula), itoa(rounds))
		}
	}
	t.Note = "the odd-m formula tracks the measurements (exact on the 5x5 Figure 6 case); the even-m branch of Theorem 8 underestimates the measured times — see EXPERIMENTS.md"
	return t
}

// E09Figure5 compares the measured 5x5 mesh recoloring-time matrix against
// the paper's Figure 5.
func E09Figure5() *Table {
	t := NewTable("E09  Figure 5: recoloring times on the 5x5 toroidal mesh (full cross)",
		"row", "paper", "measured")
	c, err := dynamo.FullCross(5, 5, 1, pal(5))
	if err != nil {
		t.Note = "construction failed: " + err.Error()
		return t
	}
	measured, _ := TimingMatrix(c.Topology, c.Coloring, 1)
	ref := Figure5Reference()
	for i := range ref {
		t.AddRow(itoa(i), fmt.Sprint(ref[i]), fmt.Sprint(measured[i]))
	}
	t.AddRow("matches", "", boolMark(MatricesEqual(measured, ref)))
	return t
}

// E10Figure6 compares the measured 5x5 cordalis recoloring-time matrix
// against the paper's Figure 6.
func E10Figure6() *Table {
	t := NewTable("E10  Figure 6: recoloring times on the 5x5 torus cordalis (Theorem 4 seed)",
		"row", "paper", "measured")
	c, err := dynamo.CordalisMinimum(5, 5, 1, pal(6))
	if err != nil {
		t.Note = "construction failed: " + err.Error()
		return t
	}
	measured, _ := TimingMatrix(c.Topology, c.Coloring, 1)
	ref := Figure6Reference()
	for i := range ref {
		t.AddRow(itoa(i), fmt.Sprint(ref[i]), fmt.Sprint(measured[i]))
	}
	t.AddRow("matches", "", boolMark(MatricesEqual(measured, ref)))
	t.AddRow("max (= rounds)", itoa(MatrixMax(ref)), itoa(MatrixMax(measured)))
	if !MatricesEqual(measured, ref) {
		t.Note = fmt.Sprintf("%d of 25 entries differ (padding-dependent cells); the overall propagation pattern and the total round count are compared in the last row", MatrixDiffCount(measured, ref))
	}
	return t
}

// E11Proposition3 explores how many colors the small-torus dynamos need.
func E11Proposition3() *Table {
	t := NewTable("E11  Proposition 3: colors vs min(m,n)",
		"m", "n", "N=min(m,n)", "|C|", "seed", "seed size", "dynamo")
	// N = 2: a column on an m x 2 torus.
	for _, colors := range []int{2, 3} {
		topo := grid.MustNew(grid.KindToroidalMesh, 6, 2)
		c := color.NewColoring(topo.Dims(), color.None)
		c.FillCol(0, 1)
		others := pal(colors).Others(1)
		for i := 0; i < 6; i++ {
			c.SetRC(i, 1, others[i%len(others)])
		}
		v := dynamo.VerifyColoring(topo, c, 1)
		t.AddRow("6", "2", "2", itoa(colors), "column (size m)", itoa(c.Count(1)), boolMark(v.IsDynamo))
	}
	// N = 3: a single row is not enough (it leaves a non-k-block); the
	// L-shaped Theorem 2 seed works with >= 4 colors.
	{
		topo := grid.MustNew(grid.KindToroidalMesh, 3, 8)
		c := color.NewColoring(topo.Dims(), color.None)
		c.FillRow(0, 1)
		others := pal(4).Others(1)
		for i := 1; i < 3; i++ {
			for j := 0; j < 8; j++ {
				c.SetRC(i, j, others[(i-1)%len(others)])
			}
		}
		v := dynamo.VerifyColoring(topo, c, 1)
		t.AddRow("3", "8", "3", "4", "single row (size n)", itoa(c.Count(1)), boolMark(v.IsDynamo))
	}
	if c, err := dynamo.MeshMinimum(3, 8, 1, pal(4)); err == nil {
		v := dynamo.Verify(c)
		t.AddRow("3", "8", "3", "4", "row+column L-shape (m+n-2)", itoa(c.SeedSize()), boolMark(v.IsDynamo))
	}
	t.Note = "with two colors the 2-wide torus column seed freezes on ties; with three it takes over; for N=3 a single row leaves a non-k-block and only the L-shaped seed is a dynamo"
	return t
}

// E12RuleComparison contrasts the SMP-Protocol with the reverse simple and
// strong majority rules of [15] on identical two-color inputs.
func E12RuleComparison() *Table {
	t := NewTable("E12  SMP vs the bi-colored rules of [15] on identical inputs",
		"configuration", "rule", "reaches monochromatic", "monotone", "rounds")
	topo := grid.MustNew(grid.KindToroidalMesh, 6, 6)
	cross := color.NewColoring(topo.Dims(), 2)
	cross.FillRow(0, 1)
	cross.FillCol(0, 1)
	rulesToTry := []rules.Rule{
		rules.SMP{},
		rules.IrreversibleSMP{Target: 1},
		rules.SimpleMajorityPB{Black: 1},
		rules.SimpleMajorityPC{},
		rules.StrongMajority{},
	}
	for _, r := range rulesToTry {
		v := dynamo.VerifyUnderRule(topo, cross, 1, r)
		t.AddRow("two-color cross on 6x6 mesh", r.Name(), boolMark(v.IsDynamo), boolMark(v.Monotone), itoa(v.Rounds))
	}
	// The comb upper-bound dynamo (Proposition 2) works under both SMP and
	// strong majority.
	if comb, err := dynamo.CombUpperBound(grid.KindToroidalMesh, 8, 8, 1, pal(4)); err == nil {
		for _, r := range []rules.Rule{rules.SMP{}, rules.StrongMajority{}} {
			v := dynamo.VerifyUnderRule(comb.Topology, comb.Coloring, 1, r)
			t.AddRow("comb upper bound on 8x8 mesh", r.Name(), boolMark(v.IsDynamo), boolMark(v.Monotone), itoa(v.Rounds))
		}
	}
	t.Note = "with two colors the SMP rule freezes on 2-2 ties while Prefer-Black takes over: the paper's Remark 1 (its rule does not reduce to [15])"
	return t
}

// E13ScaleFree runs the scale-free extension: seeding strategies and rules
// on a Barabási–Albert graph.
func E13ScaleFree() *Table {
	t := NewTable("E13  Extension: spreading on a Barabási–Albert graph (n=400, m=2)",
		"rule", "seeding", "seed size", "activated vertices", "activated fraction")
	g, err := graphs.NewBarabasiAlbert(400, 2, rng.New(7))
	if err != nil {
		t.Note = "graph generation failed: " + err.Error()
		return t
	}
	type combo struct {
		rule rules.Rule
		name string
	}
	combos := []combo{
		{rules.Threshold{Target: 1, Theta: 2}, "irreversible threshold (theta=2)"},
		{graphs.GeneralizedSMP{}, "generalized SMP"},
	}
	for _, cb := range combos {
		for _, seedSize := range []int{4, 8, 16, 40} {
			hub := graphs.Run(g, cb.rule, graphs.SeedTopByDegree(g, seedSize, 1, 2), 1, 600)
			rnd := graphs.Run(g, cb.rule, graphs.SeedRandom(g, seedSize, 1, 2, rng.New(uint64(seedSize))), 1, 600)
			t.AddRow(cb.name, "highest degree", itoa(seedSize), itoa(hub.TargetCount),
				fmt.Sprintf("%.2f", float64(hub.TargetCount)/float64(g.N())))
			t.AddRow(cb.name, "random", itoa(seedSize), itoa(rnd.TargetCount),
				fmt.Sprintf("%.2f", float64(rnd.TargetCount)/float64(g.N())))
		}
	}
	seeds := graphs.GreedyTargetSet(g, rules.Threshold{Target: 1, Theta: 2}, 1, 2, 12, 300, 25, rng.New(3))
	c := graphs.NewColoring(g.N(), 2)
	for _, v := range seeds {
		c.Set(v, 1)
	}
	res := graphs.Run(g, rules.Threshold{Target: 1, Theta: 2}, c, 1, 600)
	t.AddRow("irreversible threshold (theta=2)", "greedy TSS", itoa(len(seeds)), itoa(res.TargetCount),
		fmt.Sprintf("%.2f", float64(res.TargetCount)/float64(g.N())))
	t.Note = "hub and greedy seeding dominate random seeding under the irreversible threshold rule; the reversible generalized SMP rule barely spreads from small seeds, mirroring the torus behaviour"
	return t
}

// E14TimeVarying sweeps link availability and reports how often the
// Theorem 2 dynamo still takes over.
func E14TimeVarying() *Table {
	t := NewTable("E14  Extension: Theorem 2 dynamo under intermittent links (9x9 mesh)",
		"availability p", "runs", "monochromatic wins", "mean rounds when winning")
	c, err := dynamo.MeshMinimum(9, 9, 1, pal(5))
	if err != nil {
		t.Note = "construction failed: " + err.Error()
		return t
	}
	for _, p := range []float64{1.0, 0.99, 0.95, 0.9, 0.8, 0.6} {
		const runs = 10
		wins := 0
		var winRounds []float64
		for i := 0; i < runs; i++ {
			res := sim.Run(c.Topology, rules.SMP{}, c.Coloring, sim.Options{
				TimeVarying:           tvg.Bernoulli{P: p, Seed: uint64(100*i) + 11},
				MaxRounds:             3000,
				StopWhenMonochromatic: true,
			})
			if res.Monochromatic && res.FinalColor == 1 {
				wins++
				winRounds = append(winRounds, float64(res.Rounds))
			}
		}
		mean := "-"
		if len(winRounds) > 0 {
			mean = fmt.Sprintf("%.1f", stats.Mean(winRounds))
		}
		t.AddRow(fmt.Sprintf("%.2f", p), itoa(runs), itoa(wins), mean)
	}
	t.Note = "below full availability the dynamo can lose seed vertices whose k-links are down and be absorbed by foreign blocks; the success rate degrades as availability drops"
	return t
}

// E15Scalability measures the synchronous engine's throughput with
// sequential and parallel stepping.
func E15Scalability() *Table {
	t := NewTable("E15  Engine throughput: vertex updates per second",
		"torus", "workers", "rounds", "wall time", "vertex updates/s")
	for _, size := range []int{64, 128} {
		topo := grid.MustNew(grid.KindToroidalMesh, size, size)
		eng := sim.NewEngine(topo, rules.SMP{})
		src := rng.New(uint64(size))
		p := pal(5)
		init := color.RandomColoring(topo.Dims(), p, func() int { return src.Intn(p.K) })
		for _, workers := range []int{1, 2, 4} {
			const rounds = 60
			cur := init.Clone()
			next := init.Clone()
			start := time.Now()
			for r := 0; r < rounds; r++ {
				if workers == 1 {
					eng.Step(cur, next)
				} else {
					eng.StepParallel(cur, next, workers)
				}
				cur, next = next, cur
			}
			elapsed := time.Since(start)
			updates := float64(rounds) * float64(topo.Dims().N())
			t.AddRow(fmt.Sprintf("%dx%d", size, size), itoa(workers), itoa(rounds),
				elapsed.Round(time.Microsecond).String(),
				fmt.Sprintf("%.0f", updates/elapsed.Seconds()))
		}
	}
	t.Note = "the parallel stepper is bit-identical to the sequential one; speedups are bounded by the small per-round work at these sizes (see also the testing.B benchmarks)"
	return t
}

// E16PaddingAblation compares padding designs for the Theorem 2 seed,
// including a padding that satisfies the paper's stated hypotheses but is
// not monotone (the hypothesis gap at the seed's concave corner).
func E16PaddingAblation() *Table {
	t := NewTable("E16  Ablation: padding designs for the 8x8 Theorem 2 seed",
		"padding", "satisfies stated hypotheses", "monotone", "dynamo", "rounds")
	m, n := 8, 8
	topo := grid.MustNew(grid.KindToroidalMesh, m, n)
	d := topo.Dims()
	k := color.Color(1)
	p := pal(5)
	others := p.Others(k)

	seed := color.NewColoring(d, color.None)
	seed.FillCol(0, k)
	for j := 1; j < n-1; j++ {
		seed.SetRC(0, j, k)
	}

	addRow := func(name string, full *color.Coloring) {
		condOK := dynamo.CheckTheoremConditions(&dynamo.Construction{
			Name: name, Topology: topo, Target: k, Palette: p,
			Seed: full.Vertices(k), Coloring: full,
		}) == nil
		v := dynamo.VerifyColoring(topo, full, k)
		t.AddRow(name, boolMark(condOK), boolMark(v.Monotone), boolMark(v.IsDynamo), itoa(v.Rounds))
	}

	// 1. The analytic construction used by MeshMinimum.
	if c, err := dynamo.MeshMinimum(m, n, k, p); err == nil {
		addRow("analytic row sequence (library default)", c.Coloring)
	}
	// 2. Solver-found padding.
	if full, err := dynamo.SolvePadding(topo, seed, k, p, rng.New(17), 0); err == nil {
		addRow("randomized greedy solver", full)
	}
	// 3. The hypothesis-gap padding of dynamo.StatedConditionsGap: every
	// non-k vertex satisfies the stated hypotheses, but the seed vertex next
	// to the missing corner defects in round 1.
	if gap, err := dynamo.StatedConditionsGap(m, n, k, p); err == nil {
		addRow("stated-hypotheses-only padding (corner gap)", gap.Coloring)
	}
	// 4. An invalid padding: a 2x2 block of one color in the interior.
	cycle := []color.Color{others[0], others[1], others[2]}
	bad := seed.Clone()
	for i := 1; i < m; i++ {
		for j := 1; j < n; j++ {
			bad.SetRC(i, j, cycle[(i-1)%3])
		}
	}
	bad.SetRC(0, n-1, others[3])
	for _, rc := range [][2]int{{4, 4}, {4, 5}, {5, 4}, {5, 5}} {
		bad.SetRC(rc[0], rc[1], others[2])
	}
	addRow("padding with a planted foreign block", bad)
	t.Note = "the third row satisfies the theorem's stated hypotheses yet is neither monotone nor a dynamo: the seed vertex next to the missing corner defects in round 1 and a foreign block forms around the corner; see EXPERIMENTS.md"
	return t
}

// E17SubBoundSearch looks for monotone dynamos strictly below the Theorem 1
// lower bound by random search, reproducing the small-torus counterexamples
// recorded in EXPERIMENTS.md.
func E17SubBoundSearch() *Table {
	t := NewTable("E17  Random search for monotone dynamos below the Theorem 1 bound",
		"m", "n", "Theorem 1 bound", "smallest monotone dynamo found", "bound violated")
	for _, s := range [][2]int{{4, 4}, {4, 5}, {5, 5}, {5, 6}, {6, 6}, {7, 7}} {
		topo := grid.MustNew(grid.KindToroidalMesh, s[0], s[1])
		bound := dynamo.LowerBound(grid.KindToroidalMesh, topo.Dims())
		best, _ := search.SmallestRandomDynamo(topo, bound, 1, pal(5),
			search.Options{Trials: 600, RequireMonotone: true, Seed: uint64(s[0]*100 + s[1])})
		label := "none"
		if best > 0 {
			label = itoa(best)
		}
		t.AddRow(itoa(s[0]), itoa(s[1]), itoa(bound), label, boolMark(best > 0 && best < bound))
	}
	t.Note = "Theorem 1's bound fails on tori with min(m,n) <= 5; for larger tori the random search finds nothing below the bound (which is consistent with, but does not prove, the bound)"
	return t
}

// E18PropagationPattern contrasts the growth of the k-colored set on the
// mesh (a wave moving over the diagonals from the corners to the center,
// Section III.D) with the row-by-row sweep on the torus cordalis.
func E18PropagationPattern() *Table {
	t := NewTable("E18  Per-round growth of the k-colored set (9x9 minimum constructions)",
		"round", "mesh: new k vertices", "cordalis: new k vertices")
	mesh, err := dynamo.MeshMinimum(9, 9, 1, pal(5))
	if err != nil {
		t.Note = "mesh construction failed: " + err.Error()
		return t
	}
	cord, err := dynamo.CordalisMinimum(9, 9, 1, pal(5))
	if err != nil {
		t.Note = "cordalis construction failed: " + err.Error()
		return t
	}
	meshInc := Increments(GrowthCurve(mesh.Topology, mesh.Coloring, 1))
	cordInc := Increments(GrowthCurve(cord.Topology, cord.Coloring, 1))
	rounds := len(meshInc)
	if len(cordInc) > rounds {
		rounds = len(cordInc)
	}
	cell := func(inc []int, i int) string {
		if i < len(inc) {
			return itoa(inc[i])
		}
		return "-"
	}
	for i := 0; i < rounds; i++ {
		t.AddRow(itoa(i+1), cell(meshInc, i), cell(cordInc, i))
	}
	t.AddRow("total", itoa(sumInts(meshInc)), itoa(sumInts(cordInc)))
	t.AddRow("peak per round", itoa(PeakIncrement(GrowthCurve(mesh.Topology, mesh.Coloring, 1))),
		itoa(PeakIncrement(GrowthCurve(cord.Topology, cord.Coloring, 1))))
	t.Note = "the mesh wave accelerates (many vertices per round, finishing in ~m/2+n/2 rounds) while the cordalis sweep recolors only a couple of vertices per round for ~(m/2)·n rounds, matching the paper's description of the two coloring patterns"
	return t
}

func sumInts(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
