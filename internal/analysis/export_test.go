package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Figure 5: 5x5 mesh recoloring-time matrix": "figure-5-5x5-mesh-recoloring-time-matrix",
		"  weird___chars!!":                         "weird-chars",
		"ALL CAPS":                                  "all-caps",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
	if len(slug(strings.Repeat("very long title ", 20))) > 41 {
		t.Error("slug should be truncated")
	}
}

func TestRenderFormats(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "2")
	for _, f := range []ExportFormat{FormatText, FormatCSV, FormatMarkdown, ""} {
		out, err := render(tbl, f)
		if err != nil || out == "" {
			t.Errorf("render(%q) failed: %v", f, err)
		}
	}
	if _, err := render(tbl, "yaml"); err == nil {
		t.Error("unknown format should be rejected")
	}
}

func TestExportWritesFiles(t *testing.T) {
	dir := t.TempDir()
	// Use the two cheapest experiments to keep the test fast.
	var exps []Experiment
	for _, id := range []string{"E02", "E09"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatal("missing experiment")
		}
		exps = append(exps, e)
	}
	files, err := Export(dir, exps, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("expected 2 files, got %v", files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "paper:") {
			t.Errorf("file %s missing header", f)
		}
		if filepath.Ext(f) != ".csv" {
			t.Errorf("unexpected extension for %s", f)
		}
	}
}

func TestExportCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	e, _ := ByID("E02")
	if _, err := Export(dir, []Experiment{e}, FormatText); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("directory not created: %v", err)
	}
}

func TestExportRejectsBadFormat(t *testing.T) {
	e, _ := ByID("E02")
	if _, err := Export(t.TempDir(), []Experiment{e}, "yaml"); err == nil {
		t.Error("bad format should fail")
	}
}
