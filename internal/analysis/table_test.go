package analysis

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "a", "bb", "ccc")
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("10", "20", "30")
	tbl.Note = "a note"
	out := tbl.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "a note") {
		t.Errorf("missing title or note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, underline, header, separator, 2 rows, note
	if len(lines) != 7 {
		t.Errorf("expected 7 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: the header line and data lines have equal length.
	if len(lines[2]) != len(lines[4]) {
		t.Errorf("misaligned rows %q vs %q", lines[2], lines[4])
	}
}

func TestTableRenderWithoutTitleOrNote(t *testing.T) {
	tbl := NewTable("", "x")
	tbl.AddRow("1")
	out := tbl.Render()
	if strings.Contains(out, "note:") {
		t.Error("no note expected")
	}
	if strings.HasPrefix(out, "\n") {
		t.Error("should not start with a blank line")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "x,y")
	csv := tbl.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma cell should be quoted: %q", csv)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "2")
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "|---|---|") {
		t.Errorf("markdown malformed:\n%s", md)
	}
}

func TestTableAddRowValues(t *testing.T) {
	tbl := NewTable("t", "int", "float", "bool", "string")
	tbl.AddRowValues(3, 1.5, true, "x")
	if tbl.Rows[0][0] != "3" || tbl.Rows[0][1] != "1.500" || tbl.Rows[0][2] != "true" || tbl.Rows[0][3] != "x" {
		t.Errorf("formatted row wrong: %v", tbl.Rows[0])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("t", "a")
	tbl.AddRow("1", "2", "3")
	out := tbl.Render()
	if !strings.Contains(out, "3") {
		t.Error("extra cells should still render")
	}
}

func TestHelpers(t *testing.T) {
	if itoa(42) != "42" {
		t.Error("itoa wrong")
	}
	if boolMark(true) != "yes" || boolMark(false) != "no" {
		t.Error("boolMark wrong")
	}
}
