package analysis

import (
	"testing"

	"repro/internal/color"
	"repro/internal/dynamo"
)

func TestTimingMatrixMatchesFigure5(t *testing.T) {
	c, err := dynamo.FullCross(5, 5, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	measured, res := TimingMatrix(c.Topology, c.Coloring, 1)
	if !res.Monochromatic {
		t.Fatal("full cross should converge")
	}
	if !MatricesEqual(measured, Figure5Reference()) {
		t.Errorf("measured matrix differs from Figure 5:\n%v", measured)
	}
}

func TestTimingMatrixMatchesFigure6(t *testing.T) {
	c, err := dynamo.CordalisMinimum(5, 5, 1, color.MustPalette(6))
	if err != nil {
		t.Fatal(err)
	}
	measured, res := TimingMatrix(c.Topology, c.Coloring, 1)
	if !res.Monochromatic {
		t.Fatal("cordalis minimum should converge")
	}
	ref := Figure6Reference()
	// The overall propagation pattern must match; the total round count (the
	// matrix maximum) is the Theorem 8 value 8.
	if MatrixMax(measured) != MatrixMax(ref) {
		t.Errorf("max rounds %d, Figure 6 reports %d", MatrixMax(measured), MatrixMax(ref))
	}
	if !MatricesEqual(measured, ref) {
		diff := MatrixDiffCount(measured, ref)
		t.Logf("measured matrix differs from Figure 6 in %d/25 entries (padding-dependent cells):\n%v", diff, measured)
		if diff > 6 {
			t.Errorf("too many entries differ (%d)", diff)
		}
	}
}

func TestMatrixHelpers(t *testing.T) {
	a := [][]int{{1, 2}, {3, 4}}
	b := [][]int{{1, 2}, {3, 5}}
	if MatricesEqual(a, b) {
		t.Error("different matrices reported equal")
	}
	if !MatricesEqual(a, [][]int{{1, 2}, {3, 4}}) {
		t.Error("equal matrices reported different")
	}
	if MatricesEqual(a, [][]int{{1, 2}}) {
		t.Error("different shapes reported equal")
	}
	if MatrixMax(a) != 4 || MatrixMax(nil) != 0 {
		t.Error("MatrixMax wrong")
	}
	if MatrixDiffCount(a, b) != 1 {
		t.Error("MatrixDiffCount wrong")
	}
	if MatrixDiffCount(a, [][]int{{1}}) != -1 {
		t.Error("shape mismatch should return -1")
	}
	if MatricesEqual([][]int{{1}, {2}}, [][]int{{1}, {2, 3}}) {
		t.Error("ragged shapes reported equal")
	}
}

func TestFigureReferencesShape(t *testing.T) {
	for _, ref := range [][][]int{Figure5Reference(), Figure6Reference()} {
		if len(ref) != 5 {
			t.Fatal("reference matrices must be 5x5")
		}
		for _, row := range ref {
			if len(row) != 5 {
				t.Fatal("reference matrices must be 5x5")
			}
		}
	}
	if MatrixMax(Figure5Reference()) != 3 || MatrixMax(Figure6Reference()) != 8 {
		t.Error("reference maxima should be 3 and 8 (Theorems 7 and 8 on 5x5)")
	}
}
