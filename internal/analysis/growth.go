package analysis

import (
	"repro/internal/color"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/sim"
)

// GrowthCurve runs the SMP-Protocol on the initial coloring and returns the
// number of target-colored vertices after every round, starting with the
// seed size at index 0.  For a monotone dynamo the curve is non-decreasing
// and ends at m·n.
func GrowthCurve(topo grid.Topology, initial *color.Coloring, target color.Color) []int {
	curve := []int{initial.Count(target)}
	sim.Run(topo, rules.SMP{}, initial, sim.Options{
		Target:                target,
		StopWhenMonochromatic: true,
		DetectCycles:          true,
		Observers: []sim.Observer{sim.RoundFunc(func(round int, c *color.Coloring) {
			curve = append(curve, c.Count(target))
		})},
	})
	return curve
}

// Increments converts a growth curve into per-round increments.
func Increments(curve []int) []int {
	if len(curve) < 2 {
		return nil
	}
	out := make([]int, len(curve)-1)
	for i := 1; i < len(curve); i++ {
		out[i-1] = curve[i] - curve[i-1]
	}
	return out
}

// IsNonDecreasing reports whether the curve never decreases — the growth
// signature of a monotone dynamo.
func IsNonDecreasing(curve []int) bool {
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			return false
		}
	}
	return true
}

// PeakIncrement returns the largest per-round increment of the curve.
func PeakIncrement(curve []int) int {
	peak := 0
	for _, v := range Increments(curve) {
		if v > peak {
			peak = v
		}
	}
	return peak
}
