// Package analysis contains the experiment harness: recoloring-time
// matrices, parameter sweeps and the generators that regenerate every table
// and figure of the paper's evaluation (experiments E01..E18, indexed in
// DESIGN.md and EXPERIMENTS.md).
package analysis

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result: a title, an optional free-text
// note, a header row and data rows.  Tables print as aligned text (for the
// terminal and EXPERIMENTS.md) and as CSV (for further processing).
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates an empty table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a data row.  Missing cells are filled with empty strings;
// extra cells are kept (the renderer widens the table).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowValues appends a row, formatting each value with %v (floats with
// three decimals).
func (t *Table) AddRowValues(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'f', 3, 64)
		case bool:
			row[i] = strconv.FormatBool(x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// columns returns the widest row length including the header.
func (t *Table) columns() int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// Render returns the aligned text form of the table.
func (t *Table) Render() string {
	cols := t.columns()
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("-", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("=", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		b.WriteString("note: ")
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV returns the comma-separated form of the table (headers first).  Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown returns the GitHub-flavoured markdown form of the table, used to
// embed results into EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(row []string) {
		b.WriteString("| ")
		for i := 0; i < t.columns(); i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(cell)
		}
		b.WriteString(" |\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for i := 0; i < t.columns(); i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// itoa is a tiny alias used by the experiment generators.
func itoa(v int) string { return strconv.Itoa(v) }

// boolMark renders a boolean as a compact yes/no marker.
func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
