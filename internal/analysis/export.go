package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ExportFormat selects the on-disk representation used by Export.
type ExportFormat string

const (
	// FormatText is the aligned-column text produced by Table.Render.
	FormatText ExportFormat = "txt"
	// FormatCSV is comma-separated values.
	FormatCSV ExportFormat = "csv"
	// FormatMarkdown is a GitHub-flavoured markdown table.
	FormatMarkdown ExportFormat = "md"
)

// render returns the table in the requested format.
func render(t *Table, format ExportFormat) (string, error) {
	switch format {
	case FormatText, "":
		return t.Render(), nil
	case FormatCSV:
		return t.CSV(), nil
	case FormatMarkdown:
		return t.Markdown(), nil
	default:
		return "", fmt.Errorf("analysis: unknown export format %q", format)
	}
}

// Export runs the given experiments and writes one file per experiment into
// dir (created if missing), named "<id>-<slug>.<format>".  It returns the
// list of files written.
func Export(dir string, experiments []Experiment, format ExportFormat) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: creating %s: %w", dir, err)
	}
	var written []string
	for _, e := range experiments {
		table := e.Run()
		content, err := render(table, format)
		if err != nil {
			return written, err
		}
		ext := string(format)
		if ext == "" {
			ext = string(FormatText)
		}
		name := fmt.Sprintf("%s-%s.%s", strings.ToLower(e.ID), slug(e.Title), ext)
		path := filepath.Join(dir, name)
		header := fmt.Sprintf("%s  %s\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := os.WriteFile(path, []byte(header+content), 0o644); err != nil {
			return written, fmt.Errorf("analysis: writing %s: %w", path, err)
		}
		written = append(written, path)
	}
	return written, nil
}

// slug converts a title into a short file-name-safe fragment.
func slug(title string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
		if b.Len() >= 40 {
			break
		}
	}
	return strings.Trim(b.String(), "-")
}
