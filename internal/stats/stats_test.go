package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almost(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(xs); !almost(got, 2) {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || !almost(Sum(xs), 11) {
		t.Errorf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice extrema should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice should be 0")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); !almost(got, 5) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestMedianUnsortedInput(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); !almost(got, 5) {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Min, 1) || !almost(s.Max, 3) || !almost(s.Median, 2) {
		t.Errorf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String should not be empty")
	}
}

func TestInts(t *testing.T) {
	fs := Ints([]int{1, 2, 3})
	if len(fs) != 3 || fs[0] != 1 || fs[2] != 3 {
		t.Errorf("Ints conversion wrong: %v", fs)
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 {
		t.Fatalf("expected 5 bins, got %d", len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	if width <= 0 {
		t.Errorf("width = %v, want > 0", width)
	}
	// Constant sample.
	counts, width = Histogram([]float64{2, 2, 2}, 4)
	if counts[0] != 3 || width != 0 {
		t.Errorf("constant-sample histogram wrong: %v width %v", counts, width)
	}
	if c, _ := Histogram(nil, 3); c != nil {
		t.Error("empty histogram should be nil")
	}
	if c, _ := Histogram([]float64{1}, 0); c != nil {
		t.Error("zero-bin histogram should be nil")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with non-positive value should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean of empty slice should be 0")
	}
}

func TestMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
