// Package stats provides the small set of descriptive statistics used by the
// experiment harness: means, standard deviations, extrema, quantiles and
// compact textual summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.  It returns 0 for an empty slice
// and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a compact description of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f median=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Ints converts an integer sample to float64 for use with the other helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values exactly equal to max land in the last bin.  It returns the bin
// counts and the bin width; an empty sample or nbins <= 0 yields nil.
func Histogram(xs []float64, nbins int) (counts []int, width float64) {
	if len(xs) == 0 || nbins <= 0 {
		return nil, 0
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		counts = make([]int, nbins)
		counts[0] = len(xs)
		return counts, 0
	}
	width = (hi - lo) / float64(nbins)
	counts = make([]int, nbins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts, width
}

// GeoMean returns the geometric mean of strictly positive values; any
// non-positive value makes the result 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
