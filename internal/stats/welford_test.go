package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

// TestWelfordMatchesBatch is the property test pinning the streaming moments
// to the batch formulas: for arbitrary samples, Welford's Mean/Variance must
// agree with Mean/Variance over the full slice.
func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size)
		src := rng.New(seed)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			// Mixed scales exercise the cancellation resistance.
			xs[i] = (src.Float64() - 0.5) * math.Pow(10, float64(src.Intn(6)))
			w.Add(xs[i])
		}
		if w.N() != n {
			return false
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-9) && almostEqual(w.Variance(), Variance(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordMergeMatchesSequential checks the pairwise combination: merging
// two accumulators equals streaming the concatenated sample into one.
func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, sizeA, sizeB uint8) bool {
		src := rng.New(seed)
		var a, b, all Welford
		for i := 0; i < int(sizeA); i++ {
			x := src.Float64()*100 - 50
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(sizeB); i++ {
			x := src.Float64()*100 - 50
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Variance(); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("population variance = %v, want 4", got)
	}
	if got := w.SampleVariance(); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("sample variance = %v, want 32/7", got)
	}
	if got := w.Std(); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("std = %v, want 2", got)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 {
		t.Fatal("zero-value Welford is not empty")
	}
	w.Add(3.5)
	if w.N() != 1 || w.Mean() != 3.5 || w.Variance() != 0 {
		t.Fatalf("single observation: n=%d mean=%v var=%v", w.N(), w.Mean(), w.Variance())
	}
	var empty Welford
	w.Merge(empty)
	if w.N() != 1 || w.Mean() != 3.5 {
		t.Fatal("merging an empty accumulator changed the receiver")
	}
	empty.Merge(w)
	if empty.N() != 1 || empty.Mean() != 3.5 {
		t.Fatal("merging into an empty accumulator did not copy")
	}
}

func TestWilsonKnownValues(t *testing.T) {
	// Reference values for the 95% Wilson interval (computed from the
	// closed form; cross-checked against statsmodels).
	cases := []struct {
		k, n   int
		lo, hi float64
	}{
		{0, 10, 0, 0.27753},
		{10, 10, 0.72247, 1},
		{5, 10, 0.23659, 0.76341},
		{1, 100, 0.00177, 0.05446},
		{50, 100, 0.40383, 0.59617},
	}
	for _, c := range cases {
		lo, hi := Wilson(c.k, c.n, WilsonZ95)
		if math.Abs(lo-c.lo) > 5e-5 || math.Abs(hi-c.hi) > 5e-5 {
			t.Fatalf("Wilson(%d,%d) = [%.5f, %.5f], want [%.5f, %.5f]", c.k, c.n, lo, hi, c.lo, c.hi)
		}
	}
}

// TestWilsonProperties checks the structural properties for arbitrary (k, n):
// bounds inside [0, 1], the point estimate inside the interval, and the
// interval shrinking as n grows at fixed proportion.
func TestWilsonProperties(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := Wilson(k, n, WilsonZ95)
		p := float64(k) / float64(n)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		if p < lo-1e-12 || p > hi+1e-12 {
			return false
		}
		lo4, hi4 := Wilson(4*k, 4*n, WilsonZ95)
		return hi4-lo4 <= hi-lo+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonDegenerate(t *testing.T) {
	if lo, hi := Wilson(0, 0, WilsonZ95); lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%v, %v], want [0, 1]", lo, hi)
	}
	if lo, hi := Wilson(-3, 10, WilsonZ95); lo != 0 || hi >= 0.3 {
		t.Fatalf("Wilson clamps k < 0: got [%v, %v]", lo, hi)
	}
	if lo, hi := Wilson(15, 10, WilsonZ95); hi < 1-1e-12 || lo <= 0.7 {
		t.Fatalf("Wilson clamps k > n: got [%v, %v]", lo, hi)
	}
}
