package stats

import "math"

// Welford accumulates streaming first and second moments (Welford's online
// algorithm): one value at a time, O(1) memory, no catastrophic cancellation.
// It is the aggregator behind the Monte-Carlo ensemble harness, which folds
// replica outcomes in as they complete instead of buffering every sample.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (dividing by n, matching
// the batch Variance helper), or 0 with fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1), or
// 0 with fewer than two observations.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into this one (Chan, Golub, LeVeque
// pairwise combination), as if every observation of o had been Added here.
// It lets per-worker accumulators combine into one without re-streaming.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Wilson returns the Wilson score interval for a binomial proportion: the
// confidence interval for the success probability after observing k
// successes in n trials.  Unlike the naive normal approximation it stays
// inside [0, 1] and behaves sanely at k = 0 and k = n, which is exactly the
// regime phase-transition sweeps live in (takeover probability near 0 or 1).
// z is the standard-normal quantile for the desired confidence (use WilsonZ95
// for 95%).  An empty sample (n <= 0) returns the uninformative [0, 1].
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonZ95 is the standard-normal 97.5% quantile, the z for a two-sided 95%
// Wilson interval.
const WilsonZ95 = 1.959963984540054
