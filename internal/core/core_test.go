package core

import (
	"strings"
	"testing"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem("hypercube", 5, 5, 4); err == nil {
		t.Error("unknown topology should be rejected")
	}
	if _, err := NewSystem("mesh", 1, 5, 4); err == nil {
		t.Error("bad dimensions should be rejected")
	}
	if _, err := NewSystem("mesh", 5, 5, 0); err == nil {
		t.Error("empty palette should be rejected")
	}
	sys, err := NewSystem("mesh", 5, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Rule.Name() != "smp" {
		t.Error("default rule should be SMP")
	}
}

func TestWithRule(t *testing.T) {
	sys, _ := NewSystem("mesh", 5, 5, 4)
	pb, err := sys.WithRule("pb")
	if err != nil {
		t.Fatal(err)
	}
	if pb.Rule.Name() != "simple-majority-pb" {
		t.Errorf("rule = %q", pb.Rule.Name())
	}
	if sys.Rule.Name() != "smp" {
		t.Error("WithRule must not mutate the original system")
	}
	if _, err := sys.WithRule("nope"); err == nil {
		t.Error("unknown rule should be rejected")
	}
}

func TestMinimumDynamoEndToEnd(t *testing.T) {
	for _, topology := range []string{"mesh", "cordalis", "serpentinus"} {
		sys, err := NewSystem(topology, 9, 9, 5)
		if err != nil {
			t.Fatal(err)
		}
		cons, err := sys.MinimumDynamo(1)
		if err != nil {
			t.Fatalf("%s: %v", topology, err)
		}
		if cons.SeedSize() != sys.LowerBound() {
			t.Errorf("%s: seed %d != lower bound %d", topology, cons.SeedSize(), sys.LowerBound())
		}
		rep := sys.Verify(cons)
		if !rep.IsDynamo || !rep.Monotone || !rep.ConditionsOK {
			t.Errorf("%s: report %+v", topology, rep)
		}
		if !strings.Contains(rep.Summary(), "monochromatic after") {
			t.Errorf("%s: summary %q", topology, rep.Summary())
		}
	}
}

func TestSimulateAndVerifyColoring(t *testing.T) {
	sys, _ := NewSystem("mesh", 8, 8, 4)
	initial := sys.RandomColoring(7)
	res := sys.Simulate(initial, 1)
	if res.Rounds == 0 {
		t.Error("simulation ran zero rounds")
	}
	rep := sys.VerifyColoring(initial, 1)
	if rep.SeedSize != initial.Count(1) {
		t.Error("seed size mismatch")
	}
	if rep.IsDynamo {
		if !strings.Contains(rep.Summary(), "monochromatic after") {
			t.Error("summary should mention convergence")
		}
	} else if !strings.Contains(rep.Summary(), "did NOT") {
		t.Error("summary should mention non-convergence")
	}
}

func TestPredictedRounds(t *testing.T) {
	sys, _ := NewSystem("mesh", 5, 5, 5)
	if sys.PredictedRounds() != 3 {
		t.Errorf("PredictedRounds = %d, want 3", sys.PredictedRounds())
	}
	sys, _ = NewSystem("cordalis", 5, 5, 5)
	if sys.PredictedRounds() != 8 {
		t.Errorf("PredictedRounds = %d, want 8", sys.PredictedRounds())
	}
}

func TestTimingMatrixRendering(t *testing.T) {
	sys, _ := NewSystem("mesh", 5, 5, 5)
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}
	m, rendered := sys.TimingMatrix(cons.Coloring, 1)
	if len(m) != 5 || len(m[0]) != 5 {
		t.Fatal("matrix shape wrong")
	}
	if rendered == "" || !strings.Contains(rendered, "0") {
		t.Error("rendering looks empty")
	}
}

func TestExperimentsIndex(t *testing.T) {
	if len(Experiments()) != 18 {
		t.Errorf("expected 18 experiments, got %d", len(Experiments()))
	}
}

func TestFigures(t *testing.T) {
	for fig := 1; fig <= 6; fig++ {
		out, err := Figure(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if !strings.Contains(out, "Figure") || len(out) < 50 {
			t.Errorf("figure %d rendering looks wrong:\n%s", fig, out)
		}
	}
	if _, err := Figure(7); err == nil {
		t.Error("figure 7 should not exist")
	}
}
