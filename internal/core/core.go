// Package core was the high-level façade of the repository.  It has been
// replaced by the public, context-aware repro/dynmon package and is now a
// thin compatibility shim over it.
//
// Deprecated: import repro/dynmon instead.  Every symbol here delegates to
// its dynmon equivalent; the package is slated for deletion in a later PR.
package core

import (
	"repro/dynmon"
	"repro/internal/analysis"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rules"
	"repro/internal/sim"
)

// System bundles a torus topology, a palette and a recoloring rule.
//
// Deprecated: use dynmon.System (built with dynmon.New) instead.
type System struct {
	// Topology is the interaction topology.
	Topology grid.Topology
	// Palette is the color set C = {1..K}.
	Palette color.Palette
	// Rule is the local recoloring rule (the SMP-Protocol by default).
	Rule rules.Rule

	sys *dynmon.System
}

// NewSystem builds a system from a topology name, torus dimensions and a
// palette size.  The rule defaults to the SMP-Protocol.
//
// Deprecated: use dynmon.New(dynmon.WithTopology(topology, m, n),
// dynmon.Colors(colors)) instead.
func NewSystem(topology string, m, n, colors int) (*System, error) {
	sys, err := dynmon.New(dynmon.WithTopology(topology, m, n), dynmon.Colors(colors))
	if err != nil {
		return nil, err
	}
	return wrap(sys), nil
}

func wrap(sys *dynmon.System) *System {
	return &System{
		Topology: sys.Topology(),
		Palette:  sys.Palette(),
		Rule:     sys.Rule(),
		sys:      sys,
	}
}

// WithRule returns a copy of the system using the named rule.
//
// Deprecated: pass dynmon.WithRule(name) to dynmon.New instead.
func (s *System) WithRule(name string) (*System, error) {
	sys, err := dynmon.NewFromConfig(dynmon.Config{
		Topology: s.Topology,
		Colors:   s.Palette.K,
		RuleName: name,
	})
	if err != nil {
		return nil, err
	}
	return wrap(sys), nil
}

// MinimumDynamo builds the paper's tight construction for the system's
// topology.
//
// Deprecated: use dynmon.System.MinimumDynamo instead.
func (s *System) MinimumDynamo(target color.Color) (*dynamo.Construction, error) {
	return s.sys.MinimumDynamo(target)
}

// LowerBound returns the paper's lower bound on the size of a monotone
// dynamo for the system's topology and size.
//
// Deprecated: use dynmon.System.LowerBound instead.
func (s *System) LowerBound() int { return s.sys.LowerBound() }

// PredictedRounds returns the Theorem 7/8 convergence-time prediction.
//
// Deprecated: use dynmon.System.PredictedRounds instead.
func (s *System) PredictedRounds() int { return s.sys.PredictedRounds() }

// RandomColoring returns a uniformly random coloring of the system's torus.
//
// Deprecated: use dynmon.System.RandomColoring instead.
func (s *System) RandomColoring(seed uint64) *color.Coloring {
	return s.sys.RandomColoring(seed)
}

// Simulate runs the system's rule on the initial coloring until it freezes,
// cycles, becomes monochromatic or exhausts the default round budget.
//
// Deprecated: use dynmon.System.Run, which is context-aware, instead.
func (s *System) Simulate(initial *color.Coloring, target color.Color) *sim.Result {
	rep := s.sys.VerifyColoring(initial, target)
	return rep.Result
}

// Report is the outcome of verifying a configuration.
//
// Deprecated: use dynmon.Report instead.
type Report = dynmon.Report

// Verify runs the SMP-Protocol on a construction and summarizes the
// outcome.
//
// Deprecated: use dynmon.System.Verify instead.
func (s *System) Verify(c *dynamo.Construction) *Report { return s.sys.Verify(c) }

// VerifyColoring is Verify for an arbitrary initial coloring and target.
//
// Deprecated: use dynmon.System.VerifyColoring instead.
func (s *System) VerifyColoring(initial *color.Coloring, target color.Color) *Report {
	return s.sys.VerifyColoring(initial, target)
}

// TimingMatrix returns the per-vertex recoloring times of a configuration
// together with its ASCII rendering.
//
// Deprecated: use dynmon.System.TimingMatrix instead.
func (s *System) TimingMatrix(initial *color.Coloring, target color.Color) ([][]int, string) {
	return s.sys.TimingMatrix(initial, target)
}

// Experiments returns the full experiment index (E01..E18).
//
// Deprecated: use dynmon.Experiments instead.
func Experiments() []analysis.Experiment { return dynmon.Experiments() }

// Figure regenerates one of the paper's figures (1-6) as ASCII art plus a
// short caption.
//
// Deprecated: use dynmon.Figure instead.
func Figure(number int) (string, error) { return dynmon.Figure(number) }
