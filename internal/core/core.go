// Package core is the high-level façade of the repository: it wires the
// topologies, the SMP-Protocol, the dynamo constructions and the experiment
// harness into a small API that the command-line tools and the examples use.
//
// The typical flow is:
//
//	sys, _ := core.NewSystem("toroidal-mesh", 9, 9, 5)
//	cons, _ := sys.MinimumDynamo(1)
//	report := sys.Verify(cons)
//	fmt.Println(report.Summary())
package core

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ascii"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rules"
	"repro/internal/sim"
)

// System bundles a torus topology, a palette and a recoloring rule.
type System struct {
	// Topology is the interaction topology.
	Topology grid.Topology
	// Palette is the color set C = {1..K}.
	Palette color.Palette
	// Rule is the local recoloring rule (the SMP-Protocol by default).
	Rule rules.Rule
}

// NewSystem builds a system from a topology name ("toroidal-mesh",
// "torus-cordalis", "torus-serpentinus" or the short forms "mesh",
// "cordalis", "serpentinus"), torus dimensions and a palette size.  The rule
// defaults to the SMP-Protocol; use WithRule to change it.
func NewSystem(topology string, m, n, colors int) (*System, error) {
	kind, err := grid.ParseKind(topology)
	if err != nil {
		return nil, err
	}
	topo, err := grid.New(kind, m, n)
	if err != nil {
		return nil, err
	}
	p, err := color.NewPalette(colors)
	if err != nil {
		return nil, err
	}
	return &System{Topology: topo, Palette: p, Rule: rules.SMP{}}, nil
}

// WithRule returns a copy of the system using the named rule (see
// rules.Names for the accepted names).
func (s *System) WithRule(name string) (*System, error) {
	r, err := rules.ByName(name)
	if err != nil {
		return nil, err
	}
	out := *s
	out.Rule = r
	return &out, nil
}

// MinimumDynamo builds the paper's tight construction for the system's
// topology: Theorem 2 for the toroidal mesh, Theorem 4 for the torus
// cordalis and Theorem 6 for the torus serpentinus.
func (s *System) MinimumDynamo(target color.Color) (*dynamo.Construction, error) {
	d := s.Topology.Dims()
	return dynamo.Minimum(s.Topology.Kind(), d.Rows, d.Cols, target, s.Palette)
}

// LowerBound returns the paper's lower bound on the size of a monotone
// dynamo for the system's topology and size.
func (s *System) LowerBound() int {
	return dynamo.LowerBound(s.Topology.Kind(), s.Topology.Dims())
}

// PredictedRounds returns the Theorem 7/8 convergence-time prediction for
// the system's topology and size.
func (s *System) PredictedRounds() int {
	return dynamo.PredictedRounds(s.Topology.Kind(), s.Topology.Dims())
}

// RandomColoring returns a uniformly random coloring of the system's torus.
func (s *System) RandomColoring(seed uint64) *color.Coloring {
	src := rng.New(seed)
	return color.RandomColoring(s.Topology.Dims(), s.Palette, func() int { return src.Intn(s.Palette.K) })
}

// Simulate runs the system's rule on the initial coloring until it freezes,
// cycles, becomes monochromatic or exhausts the default round budget.
func (s *System) Simulate(initial *color.Coloring, target color.Color) *sim.Result {
	return sim.Run(s.Topology, s.Rule, initial, sim.Options{
		Target:                target,
		StopWhenMonochromatic: true,
		DetectCycles:          true,
	})
}

// Report is the outcome of verifying a configuration.
type Report struct {
	// Construction names the verified configuration.
	Construction string
	// SeedSize, LowerBound and Rounds summarize the run.
	SeedSize   int
	LowerBound int
	Rounds     int
	// PredictedRounds is the Theorem 7/8 value for the topology.
	PredictedRounds int
	// IsDynamo, Monotone and ConditionsOK are the three judgements of the
	// paper's framework.
	IsDynamo     bool
	Monotone     bool
	ConditionsOK bool
	// Result is the underlying simulation trace.
	Result *sim.Result
}

// Summary renders the report as a short human-readable paragraph.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: seed %d (lower bound %d), ", r.Construction, r.SeedSize, r.LowerBound)
	if r.IsDynamo {
		fmt.Fprintf(&b, "monochromatic after %d rounds (paper formula: %d)", r.Rounds, r.PredictedRounds)
	} else {
		fmt.Fprintf(&b, "did NOT reach the monochromatic configuration (%d rounds simulated)", r.Rounds)
	}
	fmt.Fprintf(&b, "; monotone=%v, theorem conditions hold=%v", r.Monotone, r.ConditionsOK)
	return b.String()
}

// Verify runs the SMP-Protocol on a construction and summarizes the outcome.
func (s *System) Verify(c *dynamo.Construction) *Report {
	v := dynamo.Verify(c)
	return &Report{
		Construction:    c.Name,
		SeedSize:        c.SeedSize(),
		LowerBound:      s.LowerBound(),
		Rounds:          v.Rounds,
		PredictedRounds: s.PredictedRounds(),
		IsDynamo:        v.IsDynamo,
		Monotone:        v.Monotone,
		ConditionsOK:    dynamo.CheckTheoremConditions(c) == nil,
		Result:          v.Result,
	}
}

// VerifyColoring is Verify for an arbitrary initial coloring and target.
func (s *System) VerifyColoring(initial *color.Coloring, target color.Color) *Report {
	v := dynamo.VerifyColoring(s.Topology, initial, target)
	return &Report{
		Construction:    "custom coloring",
		SeedSize:        initial.Count(target),
		LowerBound:      s.LowerBound(),
		Rounds:          v.Rounds,
		PredictedRounds: s.PredictedRounds(),
		IsDynamo:        v.IsDynamo,
		Monotone:        v.Monotone,
		Result:          v.Result,
	}
}

// TimingMatrix returns the per-vertex recoloring times of a configuration
// (the data of the paper's Figures 5 and 6) together with its ASCII
// rendering.
func (s *System) TimingMatrix(initial *color.Coloring, target color.Color) ([][]int, string) {
	m, _ := analysis.TimingMatrix(s.Topology, initial, target)
	return m, ascii.IntMatrix(m)
}

// Experiments returns the full experiment index (E01..E18).
func Experiments() []analysis.Experiment { return analysis.All() }

// Figure regenerates one of the paper's figures (1-6) as ASCII art plus a
// short caption.
func Figure(number int) (string, error) {
	p5 := color.MustPalette(5)
	switch number {
	case 1:
		c, err := dynamo.Figure1(1, p5)
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 1: a monotone dynamo of size m+n-2 = 16 on a 9x9 toroidal mesh") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 2:
		c, err := dynamo.MeshMinimum(8, 8, 1, p5)
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 2: the Theorem 2 minimum dynamo with its padding (8x8)") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 3:
		c, err := dynamo.BlockedCross(8, 8, 1, p5)
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 3: black nodes that do not constitute a dynamo (planted block)") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 4:
		c, err := dynamo.FrozenTiling(8, 8, 1, color.MustPalette(4))
		if err != nil {
			return "", err
		}
		return ascii.Banner("Figure 4: a configuration in which no recoloring can arise") +
			ascii.Coloring(c.Coloring, c.Target), nil
	case 5:
		c, err := dynamo.FullCross(5, 5, 1, p5)
		if err != nil {
			return "", err
		}
		m, _ := analysis.TimingMatrix(c.Topology, c.Coloring, 1)
		return ascii.Banner("Figure 5: recoloring times on the 5x5 toroidal mesh (full cross)") +
			ascii.SideBySide(ascii.IntMatrix(analysis.Figure5Reference()), ascii.IntMatrix(m), "   |   ") +
			"(left: paper, right: measured)\n", nil
	case 6:
		c, err := dynamo.CordalisMinimum(5, 5, 1, color.MustPalette(6))
		if err != nil {
			return "", err
		}
		m, _ := analysis.TimingMatrix(c.Topology, c.Coloring, 1)
		return ascii.Banner("Figure 6: recoloring times on the 5x5 torus cordalis (Theorem 4 seed)") +
			ascii.SideBySide(ascii.IntMatrix(analysis.Figure6Reference()), ascii.IntMatrix(m), "   |   ") +
			"(left: paper, right: measured)\n", nil
	default:
		return "", fmt.Errorf("core: the paper has figures 1 through 6, got %d", number)
	}
}
