// Timing: reproduce the paper's Figures 5 and 6 (per-vertex recoloring
// times) and check the Theorem 7/8 convergence formulas on larger tori,
// including the time-varying extension where links are intermittently
// available.
//
// Run with:
//
//	go run ./examples/timing
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dynmon"
	"repro/internal/analysis"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
)

func main() {
	// Figures 5 and 6.
	for _, fig := range []int{5, 6} {
		out, err := dynmon.Figure(fig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	// Theorem 7 on growing square meshes.
	fmt.Println(dynmon.Banner("Theorem 7 check: full-cross convergence time on square meshes"))
	fmt.Printf("%-8s %-12s %-10s\n", "size", "formula", "measured")
	for _, size := range []int{5, 9, 13, 17, 25} {
		cons, err := dynamo.FullCross(size, size, 1, color.MustPalette(5))
		if err != nil {
			log.Fatal(err)
		}
		v := dynamo.Verify(cons)
		fmt.Printf("%-8s %-12d %-10d\n", fmt.Sprintf("%dx%d", size, size),
			dynamo.PredictedRoundsMesh(grid.MustDims(size, size)), v.Rounds)
	}

	// Theorem 8 on the cordalis.
	fmt.Println()
	fmt.Println(dynmon.Banner("Theorem 8 check: cordalis convergence time"))
	fmt.Printf("%-8s %-12s %-10s\n", "size", "formula", "measured")
	for _, size := range [][2]int{{5, 5}, {7, 5}, {9, 7}, {11, 9}} {
		cons, err := dynamo.CordalisMinimum(size[0], size[1], 1, color.MustPalette(6))
		if err != nil {
			log.Fatal(err)
		}
		v := dynamo.Verify(cons)
		fmt.Printf("%-8s %-12d %-10d\n", fmt.Sprintf("%dx%d", size[0], size[1]),
			dynamo.PredictedRoundsSpiral(grid.MustDims(size[0], size[1])), v.Rounds)
	}

	// Slowdown under intermittent links (the conclusions' open problem).
	fmt.Println()
	fmt.Println(dynmon.Banner("Slowdown of the 9x9 Theorem 2 dynamo under intermittent links"))
	cons, err := dynamo.MeshMinimum(9, 9, 1, color.MustPalette(5))
	if err != nil {
		log.Fatal(err)
	}
	static := dynamo.Verify(cons)
	fmt.Printf("static torus: %d rounds\n", static.Rounds)
	// The time-varying runs go through the public engine: the TimeVarying
	// run option masks link availability per round.
	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []float64{0.99, 0.95, 0.9} {
		wins, totalRounds := 0, 0
		const runs = 5
		for i := 0; i < runs; i++ {
			res, err := sys.Run(context.Background(), cons.Coloring,
				dynmon.TimeVarying(dynmon.Bernoulli{P: p, Seed: uint64(37 + i)}),
				dynmon.MaxRounds(4000),
				dynmon.StopWhenMonochromatic(),
			)
			if err != nil {
				log.Fatal(err)
			}
			if res.Monochromatic && res.FinalColor == 1 {
				wins++
				totalRounds += res.Rounds
			}
		}
		avg := "-"
		if wins > 0 {
			avg = fmt.Sprintf("%d", totalRounds/wins)
		}
		fmt.Printf("availability %.2f: takeover in %d/%d runs, average %s rounds when it happens\n", p, wins, runs, avg)
	}

	// The exact measured matrix for a 7x7 minimum construction, for
	// comparison against the figures' diagonal pattern.
	fmt.Println()
	fmt.Println(dynmon.Banner("Recoloring times of the 7x7 Theorem 2 configuration"))
	cons7, err := dynamo.MeshMinimum(7, 7, 1, color.MustPalette(5))
	if err != nil {
		log.Fatal(err)
	}
	m, _ := analysis.TimingMatrix(cons7.Topology, cons7.Coloring, 1)
	fmt.Print(dynmon.RenderIntMatrix(m))
}
