// Quickstart: build the paper's minimum-size dynamo on a 9x9 toroidal mesh,
// verify it with the simulation engine, and print the evolution summary.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ascii"
	"repro/internal/core"
)

func main() {
	// A 9x9 toroidal mesh with five colors; color 1 is the color we want to
	// spread ("black" in the paper's figures).
	sys, err := core.NewSystem("toroidal-mesh", 9, 9, 5)
	if err != nil {
		log.Fatal(err)
	}

	// The Theorem 2 construction: a column plus a row with one vertex
	// removed, |Sk| = m+n-2 = 16, with a padding that satisfies the
	// theorem's hypotheses.
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction %q, seed size %d, lower bound %d\n\n",
		cons.Name, cons.SeedSize(), sys.LowerBound())
	fmt.Println("initial configuration (B = the spreading color):")
	fmt.Println(ascii.Coloring(cons.Coloring, cons.Target))

	// Run the SMP-Protocol until the torus is monochromatic.
	report := sys.Verify(cons)
	fmt.Println(report.Summary())

	// The per-vertex recoloring times, in the format of the paper's
	// Figures 5 and 6.
	_, timing := sys.TimingMatrix(cons.Coloring, cons.Target)
	fmt.Println("\nrecoloring times (0 = seed):")
	fmt.Print(timing)
}
