// Quickstart: build the paper's minimum-size dynamo on a 9x9 toroidal mesh,
// verify it with the simulation engine, and print the evolution summary —
// all through the public dynmon package.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dynmon"
)

func main() {
	// A 9x9 toroidal mesh with five colors; color 1 is the color we want to
	// spread ("black" in the paper's figures).
	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5), dynmon.WithRule("smp"))
	if err != nil {
		log.Fatal(err)
	}

	// The Theorem 2 construction: a column plus a row with one vertex
	// removed, |Sk| = m+n-2 = 16, with a padding that satisfies the
	// theorem's hypotheses.
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction %q, seed size %d, lower bound %d\n\n",
		cons.Name, cons.SeedSize(), sys.LowerBound())
	fmt.Println("initial configuration (B = the spreading color):")
	fmt.Println(dynmon.Render(cons.Coloring, cons.Target))

	// Run the SMP-Protocol until the torus is monochromatic, watching the
	// spread with a stats observer.  Run is context-aware: pass a deadline
	// to bound long simulations.
	stats := dynmon.NewStatsCollector(cons.Target)
	res, err := sys.Run(context.Background(), cons.Coloring,
		dynmon.Target(cons.Target),
		dynmon.StopWhenMonochromatic(),
		dynmon.WithObserver(stats))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("takeover=%v after %d rounds; per-round counts %v\n",
		stats.Takeover(), res.Rounds, stats.TargetCounts)

	// The full report checks the paper's bounds and theorem conditions.
	report := sys.Verify(cons)
	fmt.Println(report.Summary())

	// The per-vertex recoloring times, in the format of the paper's
	// Figures 5 and 6.
	_, timing := sys.TimingMatrix(cons.Coloring, cons.Target)
	fmt.Println("\nrecoloring times (0 = seed):")
	fmt.Print(timing)
}
