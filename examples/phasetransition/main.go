// Phase transition: map the takeover probability of the ε-faulty majority
// rule against the initial seeding density with a Monte-Carlo ensemble.
//
// Every replica starts from a Bernoulli(density) coloring of a two-color
// torus and evolves under simple majority where each rule application
// misfires with probability ε = 0.02.  Sweeping the density maps the phase
// transition: below the critical density the target color dies out, above
// it the target takes over the bulk despite the noise.  The ensemble is
// fully reproducible — replica seeds are derived from the spec's master
// seed with counter-based hashes, so this program prints the same numbers
// on every machine and worker count.
//
// This is the miniature of the checked-in 256x256 study
// (specs/ensembles/mesh-256x256-density-eps-faulty.json); run that one with
//
//	go run ./cmd/dynamomc -spec specs/ensembles/mesh-256x256-density-eps-faulty.json -format csv
//
// Run this with:
//
//	go run ./examples/phasetransition
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/dynmon"
)

func main() {
	spec := &dynmon.EnsembleSpec{
		System: dynmon.Spec{
			Substrate: dynmon.SubstrateSpec{
				Topology: &dynmon.TopologySpec{Name: "toroidal-mesh", Rows: 48, Cols: 48},
			},
			Colors: 2,
			Rule:   "smp",
		},
		Initial:          dynmon.InitialSpec{Config: "bernoulli"},
		Run:              dynmon.RunSpec{MaxRounds: 96, Target: 1, Noise: &dynmon.NoiseSpec{Eps: 0.02}},
		Replicas:         20,
		Seed:             7,
		TakeoverFraction: 0.75,
		Sweep: &dynmon.SweepSpec{
			Axis:   "density",
			Values: []float64{0.35, 0.45, 0.5, 0.55, 0.65},
		},
	}

	ens, err := dynmon.NewEnsemble(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	report, err := ens.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — ε-faulty majority (ε=%.2g), %d replicas per density\n\n",
		report.System, spec.Run.Noise.Eps, report.Replicas)
	fmt.Println("density  P(takeover)  95% Wilson CI")
	for _, pt := range report.Points {
		bar := strings.Repeat("#", int(pt.TakeoverProb*30+0.5))
		fmt.Printf("  %.2f     %.2f      [%.2f, %.2f]  %s\n",
			pt.Value, pt.TakeoverProb, pt.CILow, pt.CIHigh, bar)
	}
}
