// Scale-free extension: the open problem from the paper's conclusions —
// "scale-free networks could be studied under the SMP-Protocol in order to
// have a comparative analysis with respect to other algorithmic models of
// social influence".
//
// The example builds a Barabási–Albert system through the public dynmon
// API — general graphs are first-class substrates of the same tiered
// engine that steps the tori — spreads an opinion from hub, random and
// greedy-TSS seed sets under both the generalized SMP rule and the
// irreversible linear-threshold rule, and compares the outcome with the
// Deffuant bounded-confidence model on the same graph.
//
// Run with:
//
//	go run ./examples/scalefree
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dynmon"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func main() {
	const vertices, attach = 400, 2
	g, err := dynmon.NewBarabasiAlbert(vertices, attach, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Barabási–Albert network: %d vertices, %d edges, max degree %d, average degree %.1f\n\n",
		g.N(), g.EdgeCount(), g.MaxDegree(), g.AverageDegree())

	// Two systems over the same graph substrate: the degree-aware
	// generalized SMP protocol (the default graph rule) and the
	// irreversible linear-threshold rule (Kempe/Kleinberg/Tardos style),
	// both resolved through the dynmon rule registry.
	smpSys, err := dynmon.New(dynmon.Graph(g), dynmon.Colors(2))
	if err != nil {
		log.Fatal(err)
	}
	thrSys, err := dynmon.New(dynmon.Graph(g), dynmon.Colors(2), dynmon.WithRule("threshold"))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("opinion spreading from small seed sets (fraction of the network activated):")
	fmt.Printf("%-10s %-22s %-22s\n", "seed size", "irreversible threshold", "generalized SMP")
	for _, seedSize := range []int{4, 8, 16, 32} {
		hubSeed := smpSys.SeedTopByDegree(seedSize, 1, 2)
		thrRes, err := thrSys.Run(ctx, hubSeed, dynmon.MaxRounds(800))
		if err != nil {
			log.Fatal(err)
		}
		smpRes, err := smpSys.Run(ctx, hubSeed, dynmon.MaxRounds(800))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-22.2f %-22.2f\n", seedSize,
			float64(thrRes.Final.Count(1))/float64(g.N()),
			float64(smpRes.Final.Count(1))/float64(g.N()))
	}
	fmt.Println("\nthe irreversible threshold rule cascades from a handful of hubs, while the")
	fmt.Println("reversible SMP-style rule lets the majority push back — the same contrast the")
	fmt.Println("paper observes between target-set selection and its persuadable entities.")

	// Greedy target set selection baseline, evaluated on the system's
	// pooled engine.
	seeds := thrSys.GreedyTargetSet(1, 2, 10, 400, 30, 5)
	c := thrSys.NewColoring(2)
	for _, v := range seeds {
		c.Set(v, 1)
	}
	res, err := thrSys.Run(ctx, c, dynmon.MaxRounds(800))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy TSS baseline: %d seeds activate %d/%d vertices\n", len(seeds), res.Final.Count(1), g.N())

	// Bounded-confidence comparison (continuous opinions on the same graph).
	deff, err := opinion.Run(g, opinion.DefaultParams(), rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeffuant bounded-confidence model on the same graph: %d opinion clusters after %d interactions (spread %.3f)\n",
		deff.Clusters, deff.Steps, deff.Spread)
	fmt.Println("discrete majority dynamics either freeze or go monochromatic; bounded confidence fragments into clusters.")
}
