// Scale-free extension: the open problem from the paper's conclusions —
// "scale-free networks could be studied under the SMP-Protocol in order to
// have a comparative analysis with respect to other algorithmic models of
// social influence".
//
// The example generates a Barabási–Albert network, spreads an opinion from
// hub, random and greedy-TSS seed sets under both the generalized SMP rule
// and the irreversible linear-threshold rule, and compares the outcome with
// the Deffuant bounded-confidence model on the same graph.  Scale-free
// graphs are not tori, so the example drives the general-graph engine
// directly; the recoloring rule itself is resolved through the dynmon rule
// registry, the same catalog the torus tools use.
//
// Run with:
//
//	go run ./examples/scalefree
package main

import (
	"fmt"
	"log"

	"repro/dynmon"
	"repro/internal/graphs"
	"repro/internal/opinion"
	"repro/internal/rng"
)

func main() {
	const vertices, attach = 400, 2
	g, err := graphs.NewBarabasiAlbert(vertices, attach, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Barabási–Albert network: %d vertices, %d edges, max degree %d, average degree %.1f\n\n",
		g.N(), g.EdgeCount(), g.MaxDegree(), g.AverageDegree())

	// The irreversible linear-threshold rule (Kempe/Kleinberg/Tardos
	// style), by registry name.
	threshold, err := dynmon.RuleByName("threshold")
	if err != nil {
		log.Fatal(err)
	}
	smp := graphs.GeneralizedSMP{}

	fmt.Println("opinion spreading from small seed sets (fraction of the network activated):")
	fmt.Printf("%-10s %-22s %-22s\n", "seed size", "irreversible threshold", "generalized SMP")
	for _, seedSize := range []int{4, 8, 16, 32} {
		hubSeed := graphs.SeedTopByDegree(g, seedSize, 1, 2)
		thrRes := graphs.Run(g, threshold, hubSeed, 1, 800)
		smpRes := graphs.Run(g, smp, hubSeed, 1, 800)
		fmt.Printf("%-10d %-22.2f %-22.2f\n", seedSize,
			float64(thrRes.TargetCount)/float64(g.N()),
			float64(smpRes.TargetCount)/float64(g.N()))
	}
	fmt.Println("\nthe irreversible threshold rule cascades from a handful of hubs, while the")
	fmt.Println("reversible SMP-style rule lets the majority push back — the same contrast the")
	fmt.Println("paper observes between target-set selection and its persuadable entities.")

	// Greedy target set selection baseline.
	seeds := graphs.GreedyTargetSet(g, threshold, 1, 2, 10, 400, 30, rng.New(5))
	c := graphs.NewColoring(g.N(), 2)
	for _, v := range seeds {
		c.Set(v, 1)
	}
	res := graphs.Run(g, threshold, c, 1, 800)
	fmt.Printf("\ngreedy TSS baseline: %d seeds activate %d/%d vertices\n", len(seeds), res.TargetCount, g.N())

	// Bounded-confidence comparison (continuous opinions on the same graph).
	deff, err := opinion.Run(g, opinion.DefaultParams(), rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeffuant bounded-confidence model on the same graph: %d opinion clusters after %d interactions (spread %.3f)\n",
		deff.Clusters, deff.Steps, deff.Spread)
	fmt.Println("discrete majority dynamics either freeze or go monochromatic; bounded confidence fragments into clusters.")
}
