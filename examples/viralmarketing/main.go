// Viral marketing: the scenario the paper's introduction opens with.  A
// "brand" (color 1) wants to take over a population arranged on a torus by
// word of mouth: how many initial adopters does it need, and where should
// they sit?
//
// The example contrasts three seeding strategies on a 12x12 toroidal mesh:
//
//   - the paper's Theorem 2 seed (m+n-2 carefully placed adopters);
//   - the same number of adopters placed uniformly at random (a batch of
//     trials fanned across a dynmon.Session worker pool);
//   - a large "comb" seed (the Proposition 2 upper bound, about half the
//     population) that works under any padding.
//
// Run with:
//
//	go run ./examples/viralmarketing
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dynmon"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rng"
)

func main() {
	const m, n, colors = 12, 12, 5
	sys, err := dynmon.New(dynmon.Mesh(m, n), dynmon.Colors(colors))
	if err != nil {
		log.Fatal(err)
	}
	brand := dynmon.Color(1)

	fmt.Printf("population: %d individuals on a %dx%d toroidal mesh, %d competing opinions\n",
		m*n, m, n, colors)
	fmt.Printf("paper lower bound for guaranteed (monotone) takeover: %d adopters\n\n", sys.LowerBound())

	// Strategy 1: the paper's minimum construction.
	cons, err := sys.MinimumDynamo(brand)
	if err != nil {
		log.Fatal(err)
	}
	rep := sys.Verify(cons)
	fmt.Printf("[theorem-2 seeding]  %d adopters -> takeover=%v in %d rounds (monotone=%v)\n",
		cons.SeedSize(), rep.IsDynamo, rep.Rounds, rep.Monotone)

	// Strategy 2: the same budget, placed at random.  The trials are
	// independent, so fan them across a session's worker pool.
	src := rng.New(2024)
	const trials = 20
	randomTrials := make([]*dynmon.Coloring, trials)
	for i := range randomTrials {
		randomTrials[i] = dynamo.RandomSeedColoring(sys.Topology(), cons.SeedSize(), brand, sys.Palette(),
			func(b int) int { return src.Intn(b) })
	}
	session := sys.NewSession(0) // 0 = one worker per CPU
	reports, err := session.VerifyBatch(context.Background(), randomTrials, brand)
	if err != nil {
		log.Fatal(err)
	}
	wins := 0
	for _, r := range reports {
		if r.IsDynamo {
			wins++
		}
	}
	fmt.Printf("[random seeding]     %d adopters -> takeover in %d/%d trials\n",
		cons.SeedSize(), wins, trials)

	// Strategy 3: the comb upper bound (works regardless of how the rest of
	// the population is colored, but needs ~half the population).
	comb, err := dynamo.CombUpperBound(grid.KindToroidalMesh, m, n, brand, sys.Palette())
	if err != nil {
		log.Fatal(err)
	}
	combRep := sys.Verify(comb)
	fmt.Printf("[comb seeding]       %d adopters -> takeover=%v in %d rounds\n\n",
		comb.SeedSize(), combRep.IsDynamo, combRep.Rounds)

	fmt.Println("conclusion: placement matters far more than budget — the structured")
	fmt.Printf("seed of %d adopters always wins, random placement of the same budget almost\n", cons.SeedSize())
	fmt.Printf("never does, and the placement-agnostic guarantee costs %dx more adopters.\n",
		comb.SeedSize()/cons.SeedSize())
}
