// Specstream: the spec-driven, streaming face of the public API.  A System
// is built from a JSON spec (the same wire form `dynamosim -spec` runs and
// `-emit-spec` prints), its run is consumed incrementally as a step stream,
// a checkpoint is taken mid-run and serialized, and a second System —
// rebuilt from the checkpoint's embedded spec, as a separate process would —
// resumes it bit-identically to an uninterrupted run.
//
// Run with:
//
//	go run ./examples/specstream
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dynmon"
)

const specJSON = `{
  "substrate": {"topology": {"name": "toroidal-mesh", "rows": 16, "cols": 16}},
  "colors": 5,
  "rule": "smp"
}`

func main() {
	// A System from its declarative description.  ParseSpec is strict: an
	// unknown field or a malformed substrate is an error, not a guess.
	spec, err := dynmon.ParseSpec([]byte(specJSON))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := spec.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built from spec: %s\n", sys)

	// Specs round-trip: the system knows its own canonical description.
	roundtrip, err := sys.Spec()
	if err != nil {
		log.Fatal(err)
	}
	out, _ := roundtrip.JSON()
	fmt.Printf("canonical spec:\n%s\n", out)

	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		log.Fatal(err)
	}
	runOpts := []dynmon.RunOption{
		dynmon.Target(1),
		dynmon.StopWhenMonochromatic(),
		dynmon.DetectCycles(),
	}

	// The reference: one uninterrupted run.
	full, err := sys.Run(context.Background(), cons.Coloring, runOpts...)
	if err != nil {
		log.Fatal(err)
	}

	// The same run as a stream: one Step per synchronous round, consumed
	// incrementally — break out early and the run stops, no goroutines, no
	// channels.  Checkpoint the state mid-run.
	var checkpoint *dynmon.Checkpoint
	for step, err := range sys.Steps(context.Background(), cons.Coloring, runOpts...) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %2d: %3d vertices recolored\n", step.Round(), step.Changed())
		if step.Round() == 5 {
			checkpoint, err = step.Checkpoint()
			if err != nil {
				log.Fatal(err)
			}
			break // streaming cancellation: the engine stops here
		}
	}

	// Checkpoints are wire-serializable and carry the system spec, so a
	// different process can pick the run up where this one left it.
	wire, err := checkpoint.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint at round %d is %d bytes of JSON\n", checkpoint.Round, len(wire))

	parsed, err := dynmon.ParseCheckpoint(wire)
	if err != nil {
		log.Fatal(err)
	}
	elsewhere, err := parsed.System.New() // "another process"
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := elsewhere.Resume(context.Background(), parsed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("uninterrupted: %d rounds, monochromatic=%v in color %v\n",
		full.Rounds, full.Monochromatic, full.FinalColor)
	fmt.Printf("resumed:       %d rounds, monochromatic=%v in color %v\n",
		resumed.Rounds, resumed.Monochromatic, resumed.FinalColor)
	if resumed.Rounds != full.Rounds || !resumed.Final.Equal(full.Final) {
		log.Fatal("resume diverged from the uninterrupted run")
	}
	fmt.Println("resume is bit-identical to the uninterrupted run")
}
