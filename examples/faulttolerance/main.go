// Fault tolerance: the dynamo literature's original motivation.  Faulty
// processors (color 1, "black") corrupt healthy neighbors by majority; the
// question is which initial fault patterns bring the whole torus down, and
// how the answer changes between the classical bi-colored rules of
// Flocchini et al. [15] and the paper's SMP-Protocol.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/color"
	"repro/internal/core"
	"repro/internal/dynamo"
	"repro/internal/grid"
	"repro/internal/rules"
)

func main() {
	const m, n = 8, 8
	faulty := color.Color(1)

	// A classical bi-colored torus: faulty row + column ("cross" pattern).
	biSys, err := core.NewSystem("toroidal-mesh", m, n, 2)
	if err != nil {
		log.Fatal(err)
	}
	cross := color.NewColoring(biSys.Topology.Dims(), 2)
	cross.FillRow(0, faulty)
	cross.FillCol(0, faulty)

	fmt.Printf("bi-colored %dx%d torus, %d faulty processors in a cross pattern\n\n", m, n, cross.Count(faulty))
	for _, ruleName := range []string{"simple-majority-pb", "simple-majority-pc", "strong-majority", "smp"} {
		r, err := rules.ByName(ruleName)
		if err != nil {
			log.Fatal(err)
		}
		v := dynamo.VerifyUnderRule(biSys.Topology, cross, faulty, r)
		outcome := "system survives (fault containment)"
		if v.IsDynamo {
			outcome = fmt.Sprintf("system fully corrupted after %d rounds", v.Rounds)
		}
		fmt.Printf("  %-20s -> %s\n", ruleName, outcome)
	}
	fmt.Println("\nthe Prefer-Black tie rule of [15] lets the cross corrupt everything, while")
	fmt.Println("the SMP-Protocol's neutral ties contain it — the paper's Remark 1 in action.")

	// In the multicolored world the adversary needs the Theorem 2 pattern.
	fmt.Println("\nmulticolored torus (5 states): the smallest corrupting patterns per topology")
	for _, kind := range grid.Kinds() {
		sys, err := core.NewSystem(kind.String(), m, n, 5)
		if err != nil {
			log.Fatal(err)
		}
		cons, err := sys.MinimumDynamo(faulty)
		if err != nil {
			log.Fatal(err)
		}
		rep := sys.Verify(cons)
		fmt.Printf("  %-18s %2d faulty processors corrupt all %d in %2d rounds (paper bound %d, formula %d)\n",
			kind.String(), cons.SeedSize(), m*n, rep.Rounds, sys.LowerBound(), sys.PredictedRounds())
	}

	// Counterexample: one fault fewer and the system survives.
	under, err := dynamo.UndersizedSeed(m, n, faulty, color.MustPalette(5))
	if err != nil {
		log.Fatal(err)
	}
	sys, _ := core.NewSystem("toroidal-mesh", m, n, 5)
	rep := sys.Verify(under)
	fmt.Printf("\nwith only %d faulty processors (one below the bound) the mesh survives: takeover=%v\n",
		under.SeedSize(), rep.IsDynamo)
}
