// Fault tolerance: the dynamo literature's original motivation.  Faulty
// processors (color 1, "black") corrupt healthy neighbors by majority; the
// question is which initial fault patterns bring the whole torus down, and
// how the answer changes between the classical bi-colored rules of
// Flocchini et al. [15] and the paper's SMP-Protocol.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/dynmon"
	"repro/internal/dynamo"
	"repro/internal/rules"
)

func main() {
	const m, n = 8, 8
	faulty := dynmon.Color(1)

	// A classical bi-colored torus: faulty row + column ("cross" pattern).
	// Each rule gets its own system over the same topology; the engine is
	// rebuilt per rule but the coloring is shared.
	biSys, err := dynmon.New(dynmon.Mesh(m, n), dynmon.Colors(2))
	if err != nil {
		log.Fatal(err)
	}
	cross := biSys.NewColoring(2)
	cross.FillRow(0, faulty)
	cross.FillCol(0, faulty)

	fmt.Printf("bi-colored %dx%d torus, %d faulty processors in a cross pattern\n\n", m, n, cross.Count(faulty))
	// Prefer-Black must prefer the *faulty* color, so the rule is built as
	// an instance rather than resolved by name (the registry default
	// prefers color 2, the paper's generic "black" label).
	ruleSet := []struct {
		name string
		opt  dynmon.Option
	}{
		{"simple-majority-pb", dynmon.WithRuleInstance(rules.SimpleMajorityPB{Black: faulty})},
		{"simple-majority-pc", dynmon.WithRule("simple-majority-pc")},
		{"strong-majority", dynmon.WithRule("strong-majority")},
		{"smp", dynmon.WithRule("smp")},
	}
	for _, rc := range ruleSet {
		ruleSys, err := dynmon.New(dynmon.Mesh(m, n), dynmon.Colors(2), rc.opt)
		if err != nil {
			log.Fatal(err)
		}
		rep := ruleSys.VerifyColoring(cross, faulty)
		outcome := "system survives (fault containment)"
		if rep.IsDynamo {
			outcome = fmt.Sprintf("system fully corrupted after %d rounds", rep.Rounds)
		}
		fmt.Printf("  %-20s -> %s\n", rc.name, outcome)
	}
	fmt.Println("\nthe Prefer-Black tie rule of [15] lets the cross corrupt everything, while")
	fmt.Println("the SMP-Protocol's neutral ties contain it — the paper's Remark 1 in action.")

	// In the multicolored world the adversary needs the Theorem 2 pattern.
	fmt.Println("\nmulticolored torus (5 states): the smallest corrupting patterns per topology")
	for _, name := range []string{"toroidal-mesh", "torus-cordalis", "torus-serpentinus"} {
		sys, err := dynmon.New(dynmon.WithTopology(name, m, n), dynmon.Colors(5))
		if err != nil {
			log.Fatal(err)
		}
		cons, err := sys.MinimumDynamo(faulty)
		if err != nil {
			log.Fatal(err)
		}
		rep := sys.Verify(cons)
		fmt.Printf("  %-18s %2d faulty processors corrupt all %d in %2d rounds (paper bound %d, formula %d)\n",
			name, cons.SeedSize(), m*n, rep.Rounds, sys.LowerBound(), sys.PredictedRounds())
	}

	// Counterexample: one fault fewer and the system survives.
	sys, err := dynmon.New(dynmon.Mesh(m, n), dynmon.Colors(5))
	if err != nil {
		log.Fatal(err)
	}
	under, err := dynamo.UndersizedSeed(m, n, faulty, sys.Palette())
	if err != nil {
		log.Fatal(err)
	}
	rep := sys.Verify(under)
	fmt.Printf("\nwith only %d faulty processors (one below the bound) the mesh survives: takeover=%v\n",
		under.SeedSize(), rep.IsDynamo)
}
