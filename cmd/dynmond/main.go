// Command dynmond serves dynamo simulations over HTTP: spec in, stream out.
// It is a thin binary over repro/dynserve — see that package for the
// endpoint table and the determinism/cache contract.
//
//	dynmond -addr :8080 -workers 8 -queue 256
//
// Submit a run and stream its rounds as NDJSON:
//
//	curl -sN -d @specs/mesh-9x9-minimum.json localhost:8080/v1/runs
//
// Or fetch just the terminal Result (exactly the bytes dynamosim -spec
// -result-json prints for the same file):
//
//	curl -s -H 'Accept: application/json' -d @run.json localhost:8080/v1/runs
//
// Monte-Carlo ensemble studies post to /v1/ensembles (the same report
// dynamomc computes offline for the same spec, cached by
// EnsembleSpec.Digest):
//
//	curl -s -d @specs/ensembles/mesh-12x12-density-smoke.json localhost:8080/v1/ensembles
//
// On SIGINT/SIGTERM the server drains: in-flight runs finish or are evicted
// to checkpoints, new submissions get 503, and the process exits when the
// pool is idle or -drain-timeout expires.
//
// With -data-dir the server becomes crash-safe: every job's spec, state and
// newest checkpoint are persisted with atomic writes, and a restart on the
// same directory re-registers every job — finished jobs serve their stored
// Result, interrupted jobs restart from their last checkpoint and, by the
// engine's determinism contract, finish with bytes identical to an
// uninterrupted run.  Probe /readyz (not /healthz) for traffic-readiness:
// it is 503 while startup recovery runs and during drain.
//
// -failpoints (or DYNMOND_FAILPOINTS) arms fault injection for chaos tests:
//
//	dynmond -data-dir /tmp/jobs -failpoints 'checkpoint-slow=sleep:250ms'
//
// Never arm failpoints in production; the flag exists to make crash and
// fault drills reproducible.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/dynserve"
	"repro/dynserve/fault"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "max submissions waiting for a worker before shedding with 429 (0 = default 64)")
		cache        = flag.Int("cache", 0, "result cache entries (0 = default 1024)")
		cpEvery      = flag.Int("checkpoint-every", 0, "job checkpoint cadence in rounds (0 = default 64, negative disables)")
		runTimeout   = flag.Duration("run-timeout", 0, "per-run budget (0 = default 5m, negative disables)")
		maxBody      = flag.Int64("max-request-bytes", 0, "request body cap (0 = default 1MiB)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for runs to settle")
		dataDir      = flag.String("data-dir", "", "persist jobs here and recover them on restart (empty = in-memory only)")
		failpoints   = flag.String("failpoints", os.Getenv("DYNMOND_FAILPOINTS"), "arm fault-injection failpoints, e.g. 'worker-panic=once,checkpoint-slow=sleep:250ms' (testing only)")
	)
	flag.Parse()

	if *failpoints != "" {
		if err := fault.ArmAll(*failpoints); err != nil {
			log.Fatalf("dynmond: -failpoints: %v", err)
		}
		log.Printf("dynmond: FAULT INJECTION ARMED: %v — never run production traffic like this", fault.Active())
	}

	srv, err := dynserve.New(dynserve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		CheckpointEvery: *cpEvery,
		RunTimeout:      *runTimeout,
		MaxRequestBytes: *maxBody,
		DataDir:         *dataDir,
	})
	if err != nil {
		log.Fatalf("dynmond: %v", err)
	}
	expvar.Publish("dynmond", expvar.Func(func() any { return srv.Metrics().Snapshot() }))

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	httpServer := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("dynmond listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("dynmond: %v", err)
	case <-ctx.Done():
	}

	log.Printf("dynmond draining (up to %s)", *drainTimeout)
	deadline, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(deadline)
	if err := httpServer.Shutdown(deadline); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dynmond: shutdown: %v", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "dynmond: drain: %v\n", drainErr)
		os.Exit(1)
	}
	log.Printf("dynmond stopped")
}
