// Command dynamosearch looks for dynamos by randomized (and, for tiny tori,
// exhaustive) search, independently of the paper's constructions.  It is the
// tool that produced the sub-bound counterexamples recorded in
// EXPERIMENTS.md.
//
// Examples:
//
//	dynamosearch -topology mesh -rows 4 -cols 4 -colors 5            # search below the bound
//	dynamosearch -topology mesh -rows 5 -cols 5 -size 7 -trials 5000 # one specific size
//	dynamosearch -topology mesh -rows 3 -cols 3 -size 3 -exhaustive  # enumerate placements
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/dynmon"
	"repro/internal/search"
)

func main() {
	var (
		topology   = flag.String("topology", "mesh", "torus topology: "+strings.Join(dynmon.TopologyNames(), ", "))
		rows       = flag.Int("rows", 4, "number of rows (m)")
		cols       = flag.Int("cols", 4, "number of columns (n)")
		colors     = flag.Int("colors", 5, "palette size |C|")
		size       = flag.Int("size", 0, "seed size to search for (0 = scan downward from the paper bound)")
		trials     = flag.Int("trials", 2000, "random configurations per seed size")
		anyDynamo  = flag.Bool("any", false, "accept non-monotone dynamos too")
		exhaustive = flag.Bool("exhaustive", false, "enumerate every seed placement (tiny tori only)")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	sys, err := dynmon.New(
		dynmon.WithTopology(*topology, *rows, *cols),
		dynmon.Colors(*colors),
	)
	if err != nil {
		fatal(err)
	}
	topo := sys.Topology()
	p := sys.Palette()
	bound := sys.LowerBound()
	fmt.Printf("topology=%s size=%dx%d colors=%d paper-bound=%d\n", topo.Name(), *rows, *cols, *colors, bound)

	opt := search.Options{Trials: *trials, RequireMonotone: !*anyDynamo, Seed: *seed}

	report := func(found *search.Found) {
		fmt.Printf("found a %s dynamo of size %d (converges in %d rounds):\n",
			kindLabel(found.Monotone), found.SeedSize, found.Rounds)
		fmt.Print(dynmon.Render(found.Coloring, 1))
		if found.SeedSize < bound {
			fmt.Printf("NOTE: this is below the paper's Theorem bound of %d — see EXPERIMENTS.md (E17).\n", bound)
		}
	}

	switch {
	case *exhaustive:
		target := *size
		if target == 0 {
			target = bound - 1
		}
		found, placements, err := search.ExhaustiveMonotoneDynamo(topo, target, 1, p, 8, 0)
		if err != nil {
			fatal(err)
		}
		if found == nil {
			fmt.Printf("no monotone dynamo of size %d exists among %d placements (with the random paddings tried)\n", target, placements)
			return
		}
		report(found)
	case *size > 0:
		found := search.RandomDynamo(topo, *size, 1, p, opt)
		if found == nil {
			fmt.Printf("no dynamo of size %d found in %d trials\n", *size, *trials)
			return
		}
		report(found)
	default:
		best, found := search.SmallestRandomDynamo(topo, bound, 1, p, opt)
		if found == nil {
			fmt.Printf("no dynamo below the bound found in %d trials per size\n", *trials)
			return
		}
		fmt.Printf("smallest size found: %d (bound %d)\n", best, bound)
		report(found)
	}
}

func kindLabel(monotone bool) string {
	if monotone {
		return "monotone"
	}
	return "non-monotone"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynamosearch:", err)
	os.Exit(1)
}
