// Command dynamosearch looks for dynamos by randomized (and, for tiny tori,
// exhaustive) search, independently of the paper's constructions.  It is the
// tool that produced the sub-bound counterexamples recorded in
// EXPERIMENTS.md.
//
// Examples:
//
//	dynamosearch -topology mesh -rows 4 -cols 4 -colors 5            # search below the bound
//	dynamosearch -topology mesh -rows 5 -cols 5 -size 7 -trials 5000 # one specific size
//	dynamosearch -topology mesh -rows 3 -cols 3 -size 3 -exhaustive  # enumerate placements
//
// The system under search can also come from a spec file (a dynmon.Spec, or
// a dynmon.FileSpec whose system section is used; the search parameters
// stay on flags), and -emit-spec prints the system spec the flags denote:
//
//	dynamosearch -topology mesh -rows 4 -cols 4 -colors 5 -emit-spec > sys.json
//	dynamosearch -spec sys.json -trials 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/dynmon"
	"repro/internal/search"
)

func main() {
	var (
		specFile   = flag.String("spec", "", "search the system described by this spec file instead of the topology flags")
		emitSpec   = flag.Bool("emit-spec", false, "print the system spec this invocation denotes and exit")
		topology   = flag.String("topology", "mesh", "torus topology: "+strings.Join(dynmon.TopologyNames(), ", "))
		rows       = flag.Int("rows", 4, "number of rows (m)")
		cols       = flag.Int("cols", 4, "number of columns (n)")
		colors     = flag.Int("colors", 5, "palette size |C|")
		size       = flag.Int("size", 0, "seed size to search for (0 = scan downward from the paper bound)")
		trials     = flag.Int("trials", 2000, "random configurations per seed size")
		anyDynamo  = flag.Bool("any", false, "accept non-monotone dynamos too")
		exhaustive = flag.Bool("exhaustive", false, "enumerate every seed placement (tiny tori only)")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	sysSpec := &dynmon.Spec{
		Substrate: dynmon.SubstrateSpec{Topology: &dynmon.TopologySpec{Name: *topology, Rows: *rows, Cols: *cols}},
		Colors:    *colors,
	}
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		fs, err := dynmon.ParseFileSpec(data)
		if err != nil {
			fatal(err)
		}
		sysSpec = &fs.System
	}
	if *emitSpec {
		out, err := sysSpec.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		return
	}

	sys, err := sysSpec.New()
	if err != nil {
		fatal(err)
	}
	if sys.Topology() == nil {
		fatal(fmt.Errorf("dynamo search is defined on torus topologies; the spec describes a graph substrate"))
	}
	topo := sys.Topology()
	p := sys.Palette()
	bound := sys.LowerBound()
	d := topo.Dims()
	fmt.Printf("topology=%s size=%dx%d colors=%d paper-bound=%d\n", topo.Name(), d.Rows, d.Cols, p.K, bound)

	opt := search.Options{Trials: *trials, RequireMonotone: !*anyDynamo, Seed: *seed}

	report := func(found *search.Found) {
		fmt.Printf("found a %s dynamo of size %d (converges in %d rounds):\n",
			kindLabel(found.Monotone), found.SeedSize, found.Rounds)
		fmt.Print(dynmon.Render(found.Coloring, 1))
		if found.SeedSize < bound {
			fmt.Printf("NOTE: this is below the paper's Theorem bound of %d — see EXPERIMENTS.md (E17).\n", bound)
		}
	}

	switch {
	case *exhaustive:
		target := *size
		if target == 0 {
			target = bound - 1
		}
		found, placements, err := search.ExhaustiveMonotoneDynamo(topo, target, 1, p, 8, 0)
		if err != nil {
			fatal(err)
		}
		if found == nil {
			fmt.Printf("no monotone dynamo of size %d exists among %d placements (with the random paddings tried)\n", target, placements)
			return
		}
		report(found)
	case *size > 0:
		found := search.RandomDynamo(topo, *size, 1, p, opt)
		if found == nil {
			fmt.Printf("no dynamo of size %d found in %d trials\n", *size, *trials)
			return
		}
		report(found)
	default:
		best, found := search.SmallestRandomDynamo(topo, bound, 1, p, opt)
		if found == nil {
			fmt.Printf("no dynamo below the bound found in %d trials per size\n", *trials)
			return
		}
		fmt.Printf("smallest size found: %d (bound %d)\n", best, bound)
		report(found)
	}
}

func kindLabel(monotone bool) string {
	if monotone {
		return "monotone"
	}
	return "non-monotone"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynamosearch:", err)
	os.Exit(1)
}
