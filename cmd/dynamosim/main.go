// Command dynamosim runs a single simulation on a colored substrate — one
// of the paper's tori or a general graph — and prints the outcome.  It is a
// thin CLI over the public repro/dynmon package.
//
// Examples:
//
//	dynamosim -topology mesh -rows 9 -cols 9 -colors 5 -config minimum -render
//	dynamosim -topology cordalis -rows 5 -cols 5 -colors 6 -config minimum -timing
//	dynamosim -topology mesh -rows 12 -cols 12 -colors 4 -config random -seed 7
//	dynamosim -topology mesh -rows 6 -cols 6 -colors 2 -config cross -rule pb
//	dynamosim -topology mesh -rows 16 -cols 16 -config minimum -animate -timeout 5s
//
// General-graph runs replace the topology with a generated graph (the rule
// defaults to the degree-aware generalized-smp) and seed by hubs, at
// random, or with the greedy target-set baseline:
//
//	dynamosim -graph ba -graph-n 1000 -graph-m 2 -colors 2 -config hubs:16
//	dynamosim -graph ws -graph-n 500 -graph-k 6 -graph-beta 0.1 -colors 2 -config random:25 -seed 3
//	dynamosim -graph ba -graph-n 200 -graph-m 2 -colors 2 -rule threshold -config greedy:8
//
// Time-varying runs mask link availability per round on any substrate:
//
//	dynamosim -topology mesh -rows 9 -cols 9 -config minimum -availability 0.9 -max-rounds 3000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/dynmon"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
)

func main() {
	var (
		topology  = flag.String("topology", "mesh", "torus topology: "+strings.Join(dynmon.TopologyNames(), ", "))
		rows      = flag.Int("rows", 9, "number of rows (m)")
		cols      = flag.Int("cols", 9, "number of columns (n)")
		graphKind = flag.String("graph", "", "general-graph substrate instead of a torus: ba (Barabási–Albert), ws (Watts–Strogatz), er (Erdős–Rényi)")
		graphN    = flag.Int("graph-n", 400, "graph vertex count")
		graphM    = flag.Int("graph-m", 2, "Barabási–Albert attachments per vertex")
		graphK    = flag.Int("graph-k", 4, "Watts–Strogatz ring degree (even)")
		graphBeta = flag.Float64("graph-beta", 0.1, "Watts–Strogatz rewiring probability")
		graphP    = flag.Float64("graph-p", 0.02, "Erdős–Rényi edge probability")
		colors    = flag.Int("colors", 5, "palette size |C|")
		config    = flag.String("config", "minimum", "initial configuration: minimum, cross, comb, random, blocked, frozen (tori); hubs[:size], random[:size], greedy[:size] (graphs)")
		ruleName  = flag.String("rule", "smp", "recoloring rule: "+strings.Join(dynmon.RuleNames(), ", "))
		target    = flag.Int("target", 1, "target color k")
		seed      = flag.Uint64("seed", 1, "random seed for graph generation and random configurations")
		avail     = flag.Float64("availability", 1, "per-round Bernoulli link availability (< 1 runs the time-varying mode)")
		maxRounds = flag.Int("max-rounds", 0, "round budget (0 = substrate default)")
		render    = flag.Bool("render", false, "render the initial and final colorings (tori only)")
		animate   = flag.Bool("animate", false, "render the configuration after every round (tori only)")
		timing    = flag.Bool("timing", false, "print the per-vertex recoloring-time matrix (Figures 5/6 format, tori only)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
	)
	flag.Parse()

	opts := []dynmon.Option{dynmon.Colors(*colors), dynmon.WithRule(*ruleName)}
	switch *graphKind {
	case "":
		opts = append(opts, dynmon.WithTopology(*topology, *rows, *cols))
	case "ba":
		opts = append(opts, dynmon.BarabasiAlbert(*graphN, *graphM, *seed))
	case "ws":
		opts = append(opts, dynmon.WattsStrogatz(*graphN, *graphK, *graphBeta, *seed))
	case "er":
		opts = append(opts, dynmon.ErdosRenyi(*graphN, *graphP, *seed))
	default:
		fatal(fmt.Errorf("unknown graph kind %q (want ba, ws or er)", *graphKind))
	}
	// On graph substrates dynmon itself resolves the default "smp" to its
	// degree-aware generalized form; no CLI-side remapping needed.
	sys, err := dynmon.New(opts...)
	if err != nil {
		fatal(err)
	}
	k := color.Color(*target)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runOpts := []dynmon.RunOption{
		dynmon.Target(k),
		dynmon.StopWhenMonochromatic(),
		dynmon.MaxRounds(*maxRounds),
	}
	if *avail < 1 {
		runOpts = append(runOpts, dynmon.TimeVarying(dynmon.Bernoulli{P: *avail, Seed: *seed}))
	} else {
		runOpts = append(runOpts, dynmon.DetectCycles())
	}

	if sys.Graph() != nil {
		runGraph(ctx, sys, *config, k, *seed, runOpts)
		return
	}

	cons, err := buildConfig(sys, *config, k, *seed)
	if err != nil {
		fatal(err)
	}
	initial := cons.Coloring

	fmt.Printf("topology=%s size=%dx%d colors=%d rule=%s config=%s seed-size=%d lower-bound=%d\n",
		sys.Topology().Name(), *rows, *cols, *colors, sys.Rule().Name(), cons.Name, initial.Count(k), sys.LowerBound())
	if *render {
		fmt.Println("initial configuration:")
		fmt.Print(dynmon.Render(initial, k))
	}

	if *animate {
		runOpts = append(runOpts, dynmon.WithObserver(dynmon.NewAnimator(os.Stdout, k)))
	}
	res, err := sys.Run(ctx, initial, runOpts...)
	if err != nil {
		fmt.Printf("simulation aborted after %d rounds: %v\n", res.Rounds, err)
		os.Exit(1)
	}

	rep := &dynmon.Report{
		Construction:    cons.Name,
		SeedSize:        initial.Count(k),
		LowerBound:      sys.LowerBound(),
		Rounds:          res.Rounds,
		PredictedRounds: sys.PredictedRounds(),
		IsDynamo:        res.Monochromatic && res.FinalColor == k,
		Monotone:        res.MonotoneTarget,
		Result:          res,
	}
	if sys.Rule().Name() == "smp" {
		rep.ConditionsOK = dynamo.CheckTheoremConditions(cons) == nil
	}
	fmt.Println(rep.Summary())
	if *render {
		fmt.Println("final configuration:")
		fmt.Print(dynmon.Render(res.Final, k))
	}
	if *timing {
		_, rendered := sys.TimingMatrix(initial, k)
		fmt.Println("recoloring-time matrix (0 = seed, · = never):")
		fmt.Print(rendered)
	}
}

// runGraph drives a general-graph simulation: seed by configuration name,
// run on the unified engine, report the spread.
func runGraph(ctx context.Context, sys *dynmon.System, config string, k color.Color, seed uint64, runOpts []dynmon.RunOption) {
	g := sys.Graph()
	others := sys.Palette().Others(k)
	if len(others) == 0 {
		fatal(fmt.Errorf("graph runs need a background color distinct from the target; use -colors 2 or more"))
	}
	background := others[0]
	name, size := splitConfig(config, 8)

	var initial *dynmon.Coloring
	switch name {
	case "hubs":
		initial = sys.SeedTopByDegree(size, k, background)
	case "random":
		initial = sys.SeedRandom(size, k, background, seed)
	case "greedy":
		seeds := sys.GreedyTargetSet(k, background, size, 0, 30, seed)
		initial = sys.NewColoring(background)
		for _, v := range seeds {
			initial.Set(v, k)
		}
	default:
		fatal(fmt.Errorf("unknown graph config %q (want hubs[:size], random[:size] or greedy[:size])", config))
	}

	fmt.Printf("graph n=%d edges=%d max-degree=%d colors=%d rule=%s config=%s seed-size=%d\n",
		g.N(), g.EdgeCount(), g.MaxDegree(), sys.Palette().K, sys.Rule().Name(), config, initial.Count(k))
	res, err := sys.Run(ctx, initial, runOpts...)
	if err != nil {
		fmt.Printf("simulation aborted after %d rounds: %v\n", res.Rounds, err)
		os.Exit(1)
	}
	fmt.Printf("rounds=%d kernel=%s fixed-point=%v monochromatic=%v activated=%d/%d (%.2f)\n",
		res.Rounds, res.Kernel, res.FixedPoint, res.Monochromatic,
		res.Final.Count(k), g.N(), float64(res.Final.Count(k))/float64(g.N()))
}

// splitConfig parses "name:size" with a default size.
func splitConfig(config string, defaultSize int) (string, int) {
	name, sizeStr, found := strings.Cut(config, ":")
	if !found {
		return name, defaultSize
	}
	var size int
	if _, err := fmt.Sscanf(sizeStr, "%d", &size); err != nil || size < 1 {
		fatal(fmt.Errorf("bad config size %q", sizeStr))
	}
	return name, size
}

func buildConfig(sys *dynmon.System, config string, k color.Color, seed uint64) (*dynamo.Construction, error) {
	d := sys.Dims()
	palette := sys.Palette()
	wrap := func(c *color.Coloring, name string) *dynamo.Construction {
		return &dynamo.Construction{
			Name:     name,
			Topology: sys.Topology(),
			Target:   k,
			Palette:  palette,
			Seed:     c.Vertices(k),
			Coloring: c,
		}
	}
	switch config {
	case "cross", "blocked", "frozen":
		if sys.Topology().Kind() != grid.KindToroidalMesh {
			return nil, fmt.Errorf("config %q is defined on the toroidal mesh; use -topology mesh", config)
		}
	}
	switch config {
	case "minimum":
		return sys.MinimumDynamo(k)
	case "cross":
		if palette.K >= 4 {
			return dynamo.FullCross(d.Rows, d.Cols, k, palette)
		}
		// Two- and three-color crosses are used by the rule-comparison runs.
		c := color.NewColoring(d, palette.Others(k)[0])
		c.FillRow(0, k)
		c.FillCol(0, k)
		return wrap(c, "two-color-cross"), nil
	case "comb":
		return dynamo.CombUpperBound(sys.Topology().Kind(), d.Rows, d.Cols, k, palette)
	case "blocked":
		return dynamo.BlockedCross(d.Rows, d.Cols, k, palette)
	case "frozen":
		return dynamo.FrozenTiling(d.Rows, d.Cols, k, palette)
	case "random":
		return wrap(sys.RandomColoring(seed), "random"), nil
	default:
		return nil, fmt.Errorf("unknown config %q (want minimum, cross, comb, random, blocked or frozen)", config)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynamosim:", err)
	os.Exit(1)
}
