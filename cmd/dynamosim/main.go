// Command dynamosim runs a single simulation on a colored torus and prints
// the outcome.  It is a thin CLI over the public repro/dynmon package.
//
// Examples:
//
//	dynamosim -topology mesh -rows 9 -cols 9 -colors 5 -config minimum -render
//	dynamosim -topology cordalis -rows 5 -cols 5 -colors 6 -config minimum -timing
//	dynamosim -topology mesh -rows 12 -cols 12 -colors 4 -config random -seed 7
//	dynamosim -topology mesh -rows 6 -cols 6 -colors 2 -config cross -rule pb
//	dynamosim -topology mesh -rows 16 -cols 16 -config minimum -animate -timeout 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/dynmon"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/grid"
)

func main() {
	var (
		topology = flag.String("topology", "mesh", "torus topology: "+strings.Join(dynmon.TopologyNames(), ", "))
		rows     = flag.Int("rows", 9, "number of rows (m)")
		cols     = flag.Int("cols", 9, "number of columns (n)")
		colors   = flag.Int("colors", 5, "palette size |C|")
		config   = flag.String("config", "minimum", "initial configuration: minimum, cross, comb, random, blocked, frozen")
		ruleName = flag.String("rule", "smp", "recoloring rule: "+strings.Join(dynmon.RuleNames(), ", "))
		target   = flag.Int("target", 1, "target color k")
		seed     = flag.Uint64("seed", 1, "random seed for the random configuration")
		render   = flag.Bool("render", false, "render the initial and final colorings")
		animate  = flag.Bool("animate", false, "render the configuration after every round")
		timing   = flag.Bool("timing", false, "print the per-vertex recoloring-time matrix (Figures 5/6 format)")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
	)
	flag.Parse()

	sys, err := dynmon.New(
		dynmon.WithTopology(*topology, *rows, *cols),
		dynmon.Colors(*colors),
		dynmon.WithRule(*ruleName),
	)
	if err != nil {
		fatal(err)
	}
	k := color.Color(*target)

	cons, err := buildConfig(sys, *config, k, *seed)
	if err != nil {
		fatal(err)
	}
	initial := cons.Coloring

	fmt.Printf("topology=%s size=%dx%d colors=%d rule=%s config=%s seed-size=%d lower-bound=%d\n",
		sys.Topology().Name(), *rows, *cols, *colors, sys.Rule().Name(), cons.Name, initial.Count(k), sys.LowerBound())
	if *render {
		fmt.Println("initial configuration:")
		fmt.Print(dynmon.Render(initial, k))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runOpts := []dynmon.RunOption{
		dynmon.Target(k),
		dynmon.StopWhenMonochromatic(),
		dynmon.DetectCycles(),
	}
	if *animate {
		runOpts = append(runOpts, dynmon.WithObserver(dynmon.NewAnimator(os.Stdout, k)))
	}
	res, err := sys.Run(ctx, initial, runOpts...)
	if err != nil {
		fmt.Printf("simulation aborted after %d rounds: %v\n", res.Rounds, err)
		os.Exit(1)
	}

	rep := &dynmon.Report{
		Construction:    cons.Name,
		SeedSize:        initial.Count(k),
		LowerBound:      sys.LowerBound(),
		Rounds:          res.Rounds,
		PredictedRounds: sys.PredictedRounds(),
		IsDynamo:        res.Monochromatic && res.FinalColor == k,
		Monotone:        res.MonotoneTarget,
		Result:          res,
	}
	if sys.Rule().Name() == "smp" {
		rep.ConditionsOK = dynamo.CheckTheoremConditions(cons) == nil
	}
	fmt.Println(rep.Summary())
	if *render {
		fmt.Println("final configuration:")
		fmt.Print(dynmon.Render(res.Final, k))
	}
	if *timing {
		_, rendered := sys.TimingMatrix(initial, k)
		fmt.Println("recoloring-time matrix (0 = seed, · = never):")
		fmt.Print(rendered)
	}
}

func buildConfig(sys *dynmon.System, config string, k color.Color, seed uint64) (*dynamo.Construction, error) {
	d := sys.Dims()
	palette := sys.Palette()
	wrap := func(c *color.Coloring, name string) *dynamo.Construction {
		return &dynamo.Construction{
			Name:     name,
			Topology: sys.Topology(),
			Target:   k,
			Palette:  palette,
			Seed:     c.Vertices(k),
			Coloring: c,
		}
	}
	switch config {
	case "cross", "blocked", "frozen":
		if sys.Topology().Kind() != grid.KindToroidalMesh {
			return nil, fmt.Errorf("config %q is defined on the toroidal mesh; use -topology mesh", config)
		}
	}
	switch config {
	case "minimum":
		return sys.MinimumDynamo(k)
	case "cross":
		if palette.K >= 4 {
			return dynamo.FullCross(d.Rows, d.Cols, k, palette)
		}
		// Two- and three-color crosses are used by the rule-comparison runs.
		c := color.NewColoring(d, palette.Others(k)[0])
		c.FillRow(0, k)
		c.FillCol(0, k)
		return wrap(c, "two-color-cross"), nil
	case "comb":
		return dynamo.CombUpperBound(sys.Topology().Kind(), d.Rows, d.Cols, k, palette)
	case "blocked":
		return dynamo.BlockedCross(d.Rows, d.Cols, k, palette)
	case "frozen":
		return dynamo.FrozenTiling(d.Rows, d.Cols, k, palette)
	case "random":
		return wrap(sys.RandomColoring(seed), "random"), nil
	default:
		return nil, fmt.Errorf("unknown config %q (want minimum, cross, comb, random, blocked or frozen)", config)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynamosim:", err)
	os.Exit(1)
}
