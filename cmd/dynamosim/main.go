// Command dynamosim runs a single simulation on a colored substrate — one
// of the paper's tori or a general graph — and prints the outcome.  It is a
// thin CLI over the public repro/dynmon package.
//
// A run is described either by flags or, declaratively, by a spec file (the
// JSON form of dynmon.FileSpec: system + initial + run).  -emit-spec prints
// the spec an invocation's flags denote, so any flag run can be frozen into
// a reproducible file:
//
//	dynamosim -topology mesh -rows 9 -cols 9 -colors 5 -config minimum -emit-spec > run.json
//	dynamosim -spec run.json
//
// Ensembles run from a batch spec (the JSON form of dynmon.BatchSpec: one
// system + run section and a list of initial items).  Each item prints as
// one NDJSON line {"digest":..., "result":...} whose result bytes equal the
// single-run -spec -result-json output for that item, with eligible
// two-color ensembles stepped 64 replicas per word on the bit-sliced tier:
//
//	dynamosim -batch-spec batch.json
//
// Flag examples:
//
//	dynamosim -topology mesh -rows 9 -cols 9 -colors 5 -config minimum -render
//	dynamosim -topology cordalis -rows 5 -cols 5 -colors 6 -config minimum -timing
//	dynamosim -topology mesh -rows 12 -cols 12 -colors 4 -config random -seed 7
//	dynamosim -topology mesh -rows 6 -cols 6 -colors 2 -config cross -rule pb
//	dynamosim -topology mesh -rows 16 -cols 16 -config minimum -animate -timeout 5s
//
// General-graph runs replace the topology with a generated graph (the rule
// defaults to the degree-aware generalized-smp) and seed by hubs, at
// random, or with the greedy target-set baseline:
//
//	dynamosim -graph ba -graph-n 1000 -graph-m 2 -colors 2 -config hubs:16
//	dynamosim -graph ws -graph-n 500 -graph-k 6 -graph-beta 0.1 -colors 2 -config random:25 -seed 3
//	dynamosim -graph ba -graph-n 200 -graph-m 2 -colors 2 -rule threshold -config greedy:8
//
// Time-varying runs mask link availability per round on any substrate:
//
//	dynamosim -topology mesh -rows 9 -cols 9 -config minimum -availability 0.9 -max-rounds 3000
//
// Long runs migrate across processes through checkpoints: -checkpoint-after
// streams the run, writes a checkpoint at that round and exits; -resume
// continues it bit-identically to an uninterrupted run.
//
//	dynamosim -topology mesh -rows 16 -cols 16 -config minimum -checkpoint-after 5 -checkpoint cp.json
//	dynamosim -resume cp.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/dynmon"
	"repro/internal/color"
)

func main() {
	var (
		specFile  = flag.String("spec", "", "run the spec file (JSON dynmon.FileSpec) instead of assembling one from flags")
		batchFile = flag.String("batch-spec", "", "run the batch spec file (JSON dynmon.BatchSpec: system + run + items) and print one NDJSON line per item")
		workers   = flag.Int("workers", 0, "worker-pool bound for -batch-spec (0 = GOMAXPROCS)")
		emitSpec  = flag.Bool("emit-spec", false, "print the spec this invocation denotes and exit")
		topology  = flag.String("topology", "mesh", "torus topology: "+strings.Join(dynmon.TopologyNames(), ", "))
		rows      = flag.Int("rows", 9, "number of rows (m)")
		cols      = flag.Int("cols", 9, "number of columns (n)")
		graphKind = flag.String("graph", "", "general-graph substrate instead of a torus: ba (Barabási–Albert), ws (Watts–Strogatz), er (Erdős–Rényi), or any registered generator name")
		graphN    = flag.Int("graph-n", 400, "graph vertex count")
		graphM    = flag.Int("graph-m", 2, "Barabási–Albert attachments per vertex")
		graphK    = flag.Int("graph-k", 4, "Watts–Strogatz ring degree (even)")
		graphBeta = flag.Float64("graph-beta", 0.1, "Watts–Strogatz rewiring probability")
		graphP    = flag.Float64("graph-p", 0.02, "Erdős–Rényi edge probability")
		colors    = flag.Int("colors", 5, "palette size |C|")
		config    = flag.String("config", "minimum", "initial configuration: minimum, cross, comb, random, blocked, frozen (tori); hubs[:size], random[:size], greedy[:size] (graphs)")
		ruleName  = flag.String("rule", "smp", "recoloring rule: "+strings.Join(dynmon.RuleNames(), ", "))
		target    = flag.Int("target", 1, "target color k")
		seed      = flag.Uint64("seed", 1, "random seed for graph generation and random configurations")
		avail     = flag.Float64("availability", 1, "per-round Bernoulli link availability (< 1 runs the time-varying mode)")
		maxRounds = flag.Int("max-rounds", 0, "round budget (0 = substrate default)")
		render    = flag.Bool("render", false, "render the initial and final colorings (tori only)")
		animate   = flag.Bool("animate", false, "render the configuration after every round (tori only)")
		timing    = flag.Bool("timing", false, "print the per-vertex recoloring-time matrix (Figures 5/6 format, tori only)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
		cpAfter   = flag.Int("checkpoint-after", 0, "stream the run, write a checkpoint after this round and exit")
		cpFile    = flag.String("checkpoint", "checkpoint.json", "checkpoint file written by -checkpoint-after")
		resume    = flag.String("resume", "", "resume the run checkpointed in this file (requires the checkpoint to carry its system spec)")
		resJSON   = flag.Bool("result-json", false, "print the terminal Result as one compact JSON line instead of the human report — the exact bytes dynmond streams and caches for the same spec")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *resume != "" {
		resumeRun(ctx, *resume, *resJSON)
		return
	}
	if *batchFile != "" {
		runBatchSpec(ctx, *batchFile, *workers)
		return
	}

	var fs *dynmon.FileSpec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		fs, err = dynmon.ParseFileSpec(data)
		if err != nil {
			fatal(err)
		}
	} else {
		fs = fileSpecFromFlags(*graphKind, *topology, *rows, *cols, *graphN, *graphM, *graphK, *graphBeta, *graphP,
			*colors, *ruleName, *config, color.Color(*target), *seed, *avail, *maxRounds)
	}

	if *emitSpec {
		out, err := fs.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		return
	}

	// Build through the one shared path (FileSpec.Build) so the run this
	// invocation denotes is byte-identical to what every other spec consumer
	// — dynamoexp, the dynserve HTTP server — would execute.
	sys, cons, tgt, err := fs.Build()
	if err != nil {
		fatal(err)
	}

	if *cpAfter > 0 {
		checkpointRun(ctx, sys, cons.Coloring, fs.Run, *cpAfter, *cpFile)
		return
	}

	runOpts := []dynmon.RunOption{dynmon.WithRunSpec(fs.Run)}
	if *resJSON {
		runResultJSON(ctx, sys, cons, runOpts)
		return
	}
	if sys.Graph() != nil {
		runGraph(ctx, sys, cons, tgt, runOpts)
		return
	}
	runTorus(ctx, sys, cons, tgt, runOpts, *render, *animate, *timing)
}

// runResultJSON runs the spec and prints the terminal Result as one compact
// JSON line — the machine-facing twin of the human reports, and the form CI
// diffs against the dynserve server's streamed/cached results.
func runResultJSON(ctx context.Context, sys *dynmon.System, cons *dynmon.Construction, runOpts []dynmon.RunOption) {
	res, err := sys.Run(ctx, cons.Coloring, runOpts...)
	if err != nil {
		fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// runBatchSpec runs every item of a batch spec over one shared Session —
// eligible ensembles ride the bit-sliced tier — and prints one NDJSON line
// per item, in item order: {"digest":..., "result":...}.  The result bytes
// are exactly what -spec <item> -result-json would print for the
// equivalent single-run spec file (pinned by the dynmond e2e smoke), and
// the digest is that spec file's content address.
func runBatchSpec(ctx context.Context, file string, workers int) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	bs, err := dynmon.ParseBatchSpec(data)
	if err != nil {
		fatal(err)
	}
	digests := make([]string, len(bs.Items))
	for i := range bs.Items {
		if digests[i], err = bs.ItemDigest(i); err != nil {
			fatal(err)
		}
	}
	sys, initials, err := bs.Initials()
	if err != nil {
		fatal(err)
	}
	results, err := sys.NewSession(workers).RunBatch(ctx, initials, dynmon.WithRunSpec(bs.Run))
	if err != nil {
		fatal(err)
	}
	out := json.NewEncoder(os.Stdout)
	for i, res := range results {
		line := struct {
			Digest string         `json:"digest"`
			Result *dynmon.Result `json:"result"`
		}{digests[i], res}
		if err := out.Encode(line); err != nil {
			fatal(err)
		}
	}
}

// fileSpecFromFlags assembles the declarative form of a flag invocation —
// the same structure a -spec file carries, so the two entry points cannot
// diverge.
func fileSpecFromFlags(graphKind, topology string, rows, cols, graphN, graphM, graphK int, graphBeta, graphP float64,
	colors int, ruleName, config string, target color.Color, seed uint64, avail float64, maxRounds int) *dynmon.FileSpec {
	fs := &dynmon.FileSpec{}
	switch graphKind {
	case "":
		fs.System.Substrate.Topology = &dynmon.TopologySpec{Name: topology, Rows: rows, Cols: cols}
	case "ba", "barabasi-albert":
		fs.System.Substrate.Generator = &dynmon.GeneratorSpec{
			Name: "barabasi-albert", N: graphN, Params: map[string]float64{"m": float64(graphM)}, Seed: seed,
		}
	case "ws", "watts-strogatz":
		fs.System.Substrate.Generator = &dynmon.GeneratorSpec{
			Name: "watts-strogatz", N: graphN, Params: map[string]float64{"k": float64(graphK), "beta": graphBeta}, Seed: seed,
		}
	case "er", "erdos-renyi":
		fs.System.Substrate.Generator = &dynmon.GeneratorSpec{
			Name: "erdos-renyi", N: graphN, Params: map[string]float64{"p": graphP}, Seed: seed,
		}
	default:
		// Any other registered generator, with its default parameters.
		fs.System.Substrate.Generator = &dynmon.GeneratorSpec{Name: graphKind, N: graphN, Seed: seed}
	}
	fs.System.Colors = colors
	fs.System.Rule = ruleName

	name, size := splitConfig(config, 0)
	fs.Initial = &dynmon.InitialSpec{Config: name, Size: size, Seed: seed}

	fs.Run = dynmon.RunSpec{
		Target:                target,
		StopWhenMonochromatic: true,
		MaxRounds:             maxRounds,
	}
	if avail < 1 {
		fs.Run.TimeVarying = &dynmon.AvailabilitySpec{Model: "bernoulli", P: avail, Seed: seed}
	} else {
		fs.Run.DetectCycles = true
	}
	return fs
}

// runTorus drives a torus simulation and reports in the paper's terms.
func runTorus(ctx context.Context, sys *dynmon.System, cons *dynmon.Construction, k color.Color, runOpts []dynmon.RunOption, render, animate, timing bool) {
	initial := cons.Coloring
	d := sys.Dims()
	fmt.Printf("topology=%s size=%dx%d colors=%d rule=%s config=%s seed-size=%d lower-bound=%d\n",
		sys.Topology().Name(), d.Rows, d.Cols, sys.Palette().K, sys.Rule().Name(), cons.Name, initial.Count(k), sys.LowerBound())
	if render {
		fmt.Println("initial configuration:")
		fmt.Print(dynmon.Render(initial, k))
	}
	if animate {
		runOpts = append(runOpts, dynmon.WithObserver(dynmon.NewAnimator(os.Stdout, k)))
	}
	res, err := sys.Run(ctx, initial, runOpts...)
	if err != nil {
		rounds := 0
		if res != nil {
			rounds = res.Rounds
		}
		fmt.Printf("simulation aborted after %d rounds: %v\n", rounds, err)
		os.Exit(1)
	}

	fmt.Println(sys.ReportFor(cons, res).Summary())
	if render {
		fmt.Println("final configuration:")
		fmt.Print(dynmon.Render(res.Final, k))
	}
	if timing {
		_, rendered := sys.TimingMatrix(initial, k)
		fmt.Println("recoloring-time matrix (0 = seed, · = never):")
		fmt.Print(rendered)
	}
}

// runGraph drives a general-graph simulation and reports the spread.
func runGraph(ctx context.Context, sys *dynmon.System, cons *dynmon.Construction, k color.Color, runOpts []dynmon.RunOption) {
	g := sys.Graph()
	initial := cons.Coloring
	fmt.Printf("graph n=%d edges=%d max-degree=%d colors=%d rule=%s config=%s seed-size=%d\n",
		g.N(), g.EdgeCount(), g.MaxDegree(), sys.Palette().K, sys.Rule().Name(), cons.Name, initial.Count(k))
	res, err := sys.Run(ctx, initial, runOpts...)
	if err != nil {
		rounds := 0
		if res != nil {
			rounds = res.Rounds
		}
		fmt.Printf("simulation aborted after %d rounds: %v\n", rounds, err)
		os.Exit(1)
	}
	fmt.Printf("rounds=%d kernel=%s fixed-point=%v monochromatic=%v activated=%d/%d (%.2f)\n",
		res.Rounds, res.Kernel, res.FixedPoint, res.Monochromatic,
		res.Final.Count(k), g.N(), float64(res.Final.Count(k))/float64(g.N()))
}

// checkpointRun streams the run, snapshots it after the given round and
// writes the checkpoint file — the "migrate a long run" entry point.
func checkpointRun(ctx context.Context, sys *dynmon.System, initial *dynmon.Coloring, run dynmon.RunSpec, after int, file string) {
	for st, err := range sys.Steps(ctx, initial, dynmon.WithRunSpec(run)) {
		if err != nil {
			fatal(err)
		}
		if st.Round() < after {
			if st.Done() {
				fmt.Printf("run finished on its own at round %d, before the requested checkpoint round %d; nothing to checkpoint\n", st.Round(), after)
				return
			}
			continue
		}
		cp, err := st.Checkpoint()
		if err != nil {
			fatal(err)
		}
		out, err := cp.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(file, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpointed at round %d -> %s (resume with -resume %s)\n", st.Round(), file, file)
		return
	}
}

// resumeRun continues a checkpointed run; the checkpoint must carry its
// system spec (checkpoints written by this tool do).
func resumeRun(ctx context.Context, file string, resJSON bool) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	cp, err := dynmon.ParseCheckpoint(data)
	if err != nil {
		fatal(err)
	}
	if cp.System == nil {
		fatal(fmt.Errorf("checkpoint %s carries no system spec; resume it in the process that owns the system", file))
	}
	sys, err := cp.System.New()
	if err != nil {
		fatal(err)
	}
	res, err := sys.Resume(ctx, cp)
	if err != nil {
		fatal(err)
	}
	if resJSON {
		out, err := json.Marshal(res)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("resumed at round %d on %s\n", cp.Round+1, sys)
	fmt.Printf("rounds=%d kernel=%s fixed-point=%v cycle=%v monochromatic=%v final-color=%v\n",
		res.Rounds, res.Kernel, res.FixedPoint, res.Cycle, res.Monochromatic, res.FinalColor)
}

// splitConfig parses "name:size" with a default size.
func splitConfig(config string, defaultSize int) (string, int) {
	name, sizeStr, found := strings.Cut(config, ":")
	if !found {
		return name, defaultSize
	}
	var size int
	if _, err := fmt.Sscanf(sizeStr, "%d", &size); err != nil || size < 1 {
		fatal(fmt.Errorf("bad config size %q", sizeStr))
	}
	return name, size
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynamosim:", err)
	os.Exit(1)
}
