// Command dynamofig regenerates the paper's figures 1-6 as ASCII art.
//
// Examples:
//
//	dynamofig           # all six figures
//	dynamofig -fig 5    # only Figure 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/dynmon"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-6 (0 = all)")
	flag.Parse()

	render := func(n int) {
		out, err := dynmon.Figure(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynamofig:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if *fig != 0 {
		render(*fig)
		return
	}
	for n := 1; n <= 6; n++ {
		render(n)
	}
}
