package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkEngineStepSequential/32x32-8         	   35118	     34067 ns/op	  30.06 MB/s	       0 B/op	       0 allocs/op
BenchmarkEngineStepSequential/32x32-8         	   36000	     33000 ns/op	  31.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkEngineStepSequential/32x32-8         	   35500	     35001 ns/op	  29.50 MB/s	       8 B/op	       1 allocs/op
BenchmarkEngineStepNearConvergence/frontier-64x64-8	 5000000	       250.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkE01MeshBounds-8                      	     100	  11111111 ns/op	         5.000 rows
PASS
ok  	repro	12.3s
`

func TestParseAggregatesRuns(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.Pkg != "repro" || f.CPU != "AMD EPYC 7B13" {
		t.Errorf("header fields wrong: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	seq := f.Benchmarks[0]
	if seq.Name != "BenchmarkEngineStepSequential/32x32" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", seq.Name)
	}
	if seq.Runs != 3 {
		t.Errorf("runs = %d, want 3", seq.Runs)
	}
	if seq.NsPerOp != 33000 || seq.NsPerOpMax != 35001 {
		t.Errorf("ns/op min/max = %v/%v, want 33000/35001", seq.NsPerOp, seq.NsPerOpMax)
	}
	if want := (34067.0 + 33000 + 35001) / 3; seq.NsPerOpMean != want {
		t.Errorf("ns/op mean = %v, want %v", seq.NsPerOpMean, want)
	}
	if seq.AllocsPerOp != 1 || seq.BytesPerOp != 8 {
		t.Errorf("allocs/bytes max = %v/%v, want 1/8", seq.AllocsPerOp, seq.BytesPerOp)
	}
	if seq.MBPerS != 31 {
		t.Errorf("MB/s = %v, want 31", seq.MBPerS)
	}
	front := f.Benchmarks[1]
	if front.NsPerOp != 250.5 || front.AllocsPerOp != 0 {
		t.Errorf("frontier record wrong: %+v", front)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 0.1s\n")); err == nil {
		t.Fatal("expected an error on input without benchmark lines")
	}
}

func mkFile(entries map[string]float64) *File {
	f := &File{Schema: schema}
	for name, ns := range entries {
		f.Benchmarks = append(f.Benchmarks, Benchmark{Name: name, Runs: 1, NsPerOp: ns, NsPerOpMean: ns, NsPerOpMax: ns})
	}
	return f
}

func TestCompareGatesRegressions(t *testing.T) {
	match := regexp.MustCompile("^BenchmarkEngineStep")
	baseline := mkFile(map[string]float64{
		"BenchmarkEngineStepSequential/64x64": 1000,
		"BenchmarkEngineStepNearConvergence":  100,
		"BenchmarkUnrelated":                  50,
	})

	// Within threshold: +19% passes, unrelated names are not gated.
	current := mkFile(map[string]float64{
		"BenchmarkEngineStepSequential/64x64": 1190,
		"BenchmarkEngineStepNearConvergence":  90,
		"BenchmarkUnrelated":                  5000,
	})
	matched, regs := Compare(baseline, current, match, 20)
	if len(matched) != 2 {
		t.Fatalf("matched %v, want the 2 engine-step benchmarks", matched)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}

	// Beyond threshold and missing-benchmark both fail.
	current = mkFile(map[string]float64{
		"BenchmarkEngineStepSequential/64x64": 1210,
	})
	_, regs = Compare(baseline, current, match, 20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (one slow, one missing): %+v", len(regs), regs)
	}
	var slow, missing bool
	for _, r := range regs {
		if r.MissingCurrent {
			missing = true
		} else if r.Name == "BenchmarkEngineStepSequential/64x64" && r.RatioPct > 20 {
			slow = true
		}
	}
	if !slow || !missing {
		t.Fatalf("regression kinds wrong: %+v", regs)
	}
}

func TestCheckSpeedup(t *testing.T) {
	f := mkFile(map[string]float64{
		"BenchmarkEngineStepNearConvergence/frontier-64x64": 250,
		"BenchmarkEngineStepNearConvergence/sweep-64x64":    72000,
	})
	ratio, err := CheckSpeedup(f, "BenchmarkEngineStepNearConvergence/frontier-64x64",
		"BenchmarkEngineStepNearConvergence/sweep-64x64", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 288 {
		t.Errorf("ratio = %v, want 288", ratio)
	}
	if _, err := CheckSpeedup(f, "BenchmarkEngineStepNearConvergence/frontier-64x64",
		"BenchmarkEngineStepNearConvergence/sweep-64x64", 1000); err == nil {
		t.Error("expected failure when the floor is above the measured ratio")
	}
	if _, err := CheckSpeedup(f, "BenchmarkNoSuch", "BenchmarkEngineStepNearConvergence/sweep-64x64", 3); err == nil {
		t.Error("expected failure on a missing benchmark name")
	}
}

func TestCheckZeroAlloc(t *testing.T) {
	f := &File{Schema: schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkEngineStepParallel/128x128-workers2", Runs: 1, NsPerOp: 100},
		{Name: "BenchmarkEngineStepParallel/128x128-workers4", Runs: 1, NsPerOp: 100, BytesPerOp: 1413, AllocsPerOp: 2},
		{Name: "BenchmarkUnrelated", Runs: 1, NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 1},
	}}

	matched, violations := CheckZeroAlloc(f, regexp.MustCompile("^BenchmarkEngineStepParallel"))
	if len(matched) != 2 {
		t.Fatalf("matched %v, want the 2 parallel benchmarks", matched)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "workers4") {
		t.Fatalf("violations = %v, want the allocating workers4 entry only", violations)
	}

	// All-clean selection passes; allocating benchmarks outside the match
	// are not gated.
	_, violations = CheckZeroAlloc(f, regexp.MustCompile("workers2$"))
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
}

// TestRunEndToEnd drives the CLI through parse and compare modes in a
// temporary directory.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-o", dir + "/base.json"}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("parse mode exited %d: %s", code, errOut.String())
	}
	// Identical files: the gate passes.
	if code := run([]string{"-baseline", dir + "/base.json", "-current", dir + "/base.json",
		"-match", "^BenchmarkEngineStep", "-threshold", "20"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("self-compare exited %d: %s%s", code, out.String(), errOut.String())
	}
	// A match with no baseline hits is a configuration error, not a pass.
	if code := run([]string{"-baseline", dir + "/base.json", "-current", dir + "/base.json",
		"-match", "^BenchmarkNoSuch"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("empty match exited %d, want 2", code)
	}
	// Speedup mode over the parsed sample: sequential 33000 vs frontier
	// 250.5 ns/op is a ~131x ratio.
	if code := run([]string{"-current", dir + "/base.json",
		"-speedup-fast", "BenchmarkEngineStepNearConvergence/frontier-64x64",
		"-speedup-slow", "BenchmarkEngineStepSequential/32x32",
		"-speedup-min", "3"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("speedup mode exited %d: %s%s", code, out.String(), errOut.String())
	}
	if code := run([]string{"-current", dir + "/base.json",
		"-speedup-fast", "BenchmarkEngineStepNearConvergence/frontier-64x64",
		"-speedup-slow", "BenchmarkEngineStepSequential/32x32",
		"-speedup-min", "100000"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("unreachable speedup floor exited %d, want 1", code)
	}
	// Zero-alloc mode: the frontier benchmark is clean, the sequential one
	// has an 8 B/op run in the sample, and an empty selection is a
	// configuration error.
	if code := run([]string{"-current", dir + "/base.json",
		"-zero-alloc", "^BenchmarkEngineStepNearConvergence"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("clean zero-alloc gate exited %d: %s%s", code, out.String(), errOut.String())
	}
	if code := run([]string{"-current", dir + "/base.json",
		"-zero-alloc", "^BenchmarkEngineStepSequential"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("allocating zero-alloc gate exited %d, want 1", code)
	}
	if code := run([]string{"-current", dir + "/base.json",
		"-zero-alloc", "^BenchmarkNoSuch"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("empty zero-alloc match exited %d, want 2", code)
	}
}
