// Command benchjson converts `go test -bench` output into a stable JSON
// trajectory file and gates benchmark regressions against a checked-in
// baseline.  It is the tooling behind the CI bench job:
//
//	go test -bench=. -benchmem -run='^$' -count=5 | benchjson -o BENCH_ci.json
//	benchjson -baseline BENCH_baseline.json -current BENCH_ci.json \
//	    -match '^BenchmarkEngineStep' -threshold 20
//
// Parsing mode reads benchmark output from stdin (or a file argument),
// aggregates repeated runs of the same benchmark (-count=N) into min/mean/max
// ns/op, and writes one JSON document.  Benchmark names are normalized by
// stripping the trailing -GOMAXPROCS suffix so files from machines with
// different core counts stay comparable.
//
// Compare mode exits non-zero when any baseline benchmark selected by -match
// is missing from the current file or regressed by more than -threshold
// percent on min ns/op (min over the repeated runs is the least noisy
// statistic for a regression gate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is the aggregated record of one benchmark across -count runs.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`      // min across runs
	NsPerOpMean float64 `json:"ns_per_op_mean"` // mean across runs
	NsPerOpMax  float64 `json:"ns_per_op_max"`  // max across runs
	BytesPerOp  float64 `json:"bytes_per_op"`   // max across runs
	AllocsPerOp float64 `json:"allocs_per_op"`  // max across runs
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// File is the JSON document benchjson reads and writes.
type File struct {
	Schema     string      `json:"schema"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const schema = "benchjson/v1"

// procSuffix matches the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFoo/case-8").
var procSuffix = regexp.MustCompile(`-\d+$`)

// benchLine matches one result line: name, iteration count, then
// "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// sample is one parsed run of one benchmark.
type sample struct {
	nsPerOp, bytesPerOp, allocsPerOp, mbPerS float64
	hasMB                                    bool
}

// Parse reads `go test -bench` output and aggregates it into a File.
func Parse(r io.Reader) (*File, error) {
	out := &File{Schema: schema}
	samples := map[string][]sample{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		var s sample
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = value
			case "B/op":
				s.bytesPerOp = value
			case "allocs/op":
				s.allocsPerOp = value
			case "MB/s":
				s.mbPerS, s.hasMB = value, true
			}
		}
		if s.nsPerOp == 0 {
			continue // a custom-metric-only line; nothing to gate on
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, name := range order {
		runs := samples[name]
		b := Benchmark{Name: name, Runs: len(runs)}
		sum := 0.0
		for i, s := range runs {
			if i == 0 || s.nsPerOp < b.NsPerOp {
				b.NsPerOp = s.nsPerOp
			}
			if s.nsPerOp > b.NsPerOpMax {
				b.NsPerOpMax = s.nsPerOp
			}
			sum += s.nsPerOp
			if s.bytesPerOp > b.BytesPerOp {
				b.BytesPerOp = s.bytesPerOp
			}
			if s.allocsPerOp > b.AllocsPerOp {
				b.AllocsPerOp = s.allocsPerOp
			}
			if s.hasMB && s.mbPerS > b.MBPerS {
				b.MBPerS = s.mbPerS
			}
		}
		b.NsPerOpMean = sum / float64(len(runs))
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines found")
	}
	return out, nil
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Name           string
	BaselineNs     float64
	CurrentNs      float64
	RatioPct       float64 // (current/baseline - 1) * 100
	MissingCurrent bool
}

// Compare gates current against baseline: every baseline benchmark whose
// name matches the pattern must be present in current with min ns/op no more
// than thresholdPct percent above the baseline's.  It returns the matched
// names (for reporting) and the violations.
func Compare(baseline, current *File, match *regexp.Regexp, thresholdPct float64) (matched []string, regressions []Regression) {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	for _, base := range baseline.Benchmarks {
		if !match.MatchString(base.Name) {
			continue
		}
		matched = append(matched, base.Name)
		now, ok := cur[base.Name]
		if !ok {
			regressions = append(regressions, Regression{Name: base.Name, BaselineNs: base.NsPerOp, MissingCurrent: true})
			continue
		}
		pct := (now.NsPerOp/base.NsPerOp - 1) * 100
		if pct > thresholdPct {
			regressions = append(regressions, Regression{
				Name: base.Name, BaselineNs: base.NsPerOp, CurrentNs: now.NsPerOp, RatioPct: pct,
			})
		}
	}
	sort.Strings(matched)
	return matched, regressions
}

// CheckZeroAlloc verifies that every benchmark in the file whose name
// matches the pattern reports zero bytes and zero allocations per
// operation.  Like CheckSpeedup it is hardware-independent: steady-state
// allocation behavior is a property of the code, not the runner, so the
// gate pins it exactly instead of within a tolerance.  At least one
// benchmark must match, otherwise a renamed benchmark would silently
// disarm the gate.
func CheckZeroAlloc(f *File, match *regexp.Regexp) (matched []string, violations []string) {
	for _, b := range f.Benchmarks {
		if !match.MatchString(b.Name) {
			continue
		}
		matched = append(matched, b.Name)
		if b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f B/op, %.0f allocs/op (want 0/0)", b.Name, b.BytesPerOp, b.AllocsPerOp))
		}
	}
	sort.Strings(matched)
	sort.Strings(violations)
	return matched, violations
}

// CheckSpeedup verifies a within-file ratio: the benchmark named fast must
// be at least minRatio times faster (lower min ns/op) than the one named
// slow.  Because both numbers come from the same run on the same machine,
// the check is hardware-independent — unlike the baseline gate — and is how
// CI enforces the frontier stepper's raison d'être regardless of runner
// class.  Names are matched after -GOMAXPROCS normalization.
func CheckSpeedup(f *File, fast, slow string, minRatio float64) (ratio float64, err error) {
	var fastNs, slowNs float64
	for _, b := range f.Benchmarks {
		switch b.Name {
		case fast:
			fastNs = b.NsPerOp
		case slow:
			slowNs = b.NsPerOp
		}
	}
	if fastNs == 0 {
		return 0, fmt.Errorf("benchjson: speedup check: benchmark %q not found", fast)
	}
	if slowNs == 0 {
		return 0, fmt.Errorf("benchjson: speedup check: benchmark %q not found", slow)
	}
	ratio = slowNs / fastNs
	if ratio < minRatio {
		return ratio, fmt.Errorf("benchjson: %s is only %.2fx faster than %s (want >= %.2fx)", fast, ratio, slow, minRatio)
	}
	return ratio, nil
}

func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if f.Schema != schema {
		return nil, fmt.Errorf("benchjson: %s: unknown schema %q (want %q)", path, f.Schema, schema)
	}
	return &f, nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write JSON to this file instead of stdout (parse mode)")
	baselinePath := fs.String("baseline", "", "baseline JSON file (switches to compare mode)")
	currentPath := fs.String("current", "", "current JSON file to gate against the baseline")
	matchExpr := fs.String("match", "^Benchmark", "regexp selecting baseline benchmarks to gate (compare mode)")
	threshold := fs.Float64("threshold", 20, "maximum tolerated ns/op regression in percent (compare mode)")
	speedupFast := fs.String("speedup-fast", "", "benchmark that must be faster (speedup mode, with -speedup-slow on -current)")
	speedupSlow := fs.String("speedup-slow", "", "benchmark that must be slower (speedup mode)")
	speedupMin := fs.Float64("speedup-min", 3, "minimum required slow/fast ns/op ratio (speedup mode)")
	zeroAlloc := fs.String("zero-alloc", "", "regexp selecting current benchmarks that must report 0 B/op and 0 allocs/op (zero-alloc mode, with -current)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *zeroAlloc != "" {
		if *currentPath == "" {
			fmt.Fprintln(stderr, "benchjson: zero-alloc mode needs -current")
			return 2
		}
		match, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: bad -zero-alloc: %v\n", err)
			return 2
		}
		current, err := readFile(*currentPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		matched, violations := CheckZeroAlloc(current, match)
		if len(matched) == 0 {
			fmt.Fprintf(stderr, "benchjson: no benchmarks match -zero-alloc %q\n", *zeroAlloc)
			return 2
		}
		for _, v := range violations {
			fmt.Fprintf(stdout, "FAIL %s\n", v)
		}
		if len(violations) > 0 {
			fmt.Fprintf(stdout, "%d of %d gated benchmarks allocate in steady state\n", len(violations), len(matched))
			return 1
		}
		fmt.Fprintf(stdout, "all %d gated benchmarks are allocation-free\n", len(matched))
		return 0
	}

	if *speedupFast != "" || *speedupSlow != "" {
		if *speedupFast == "" || *speedupSlow == "" || *currentPath == "" {
			fmt.Fprintln(stderr, "benchjson: speedup mode needs -speedup-fast, -speedup-slow and -current")
			return 2
		}
		current, err := readFile(*currentPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		ratio, err := CheckSpeedup(current, *speedupFast, *speedupSlow, *speedupMin)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s is %.1fx faster than %s (floor %.1fx)\n", *speedupFast, ratio, *speedupSlow, *speedupMin)
		return 0
	}

	if *baselinePath != "" {
		if *currentPath == "" {
			fmt.Fprintln(stderr, "benchjson: -baseline requires -current")
			return 2
		}
		match, err := regexp.Compile(*matchExpr)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: bad -match: %v\n", err)
			return 2
		}
		baseline, err := readFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		current, err := readFile(*currentPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		matched, regressions := Compare(baseline, current, match, *threshold)
		if len(matched) == 0 {
			fmt.Fprintf(stderr, "benchjson: no baseline benchmarks match %q\n", *matchExpr)
			return 2
		}
		fmt.Fprintf(stdout, "gating %d benchmarks against %s (threshold %+.0f%% ns/op)\n", len(matched), *baselinePath, *threshold)
		for _, r := range regressions {
			if r.MissingCurrent {
				fmt.Fprintf(stdout, "FAIL %s: present in baseline (%.1f ns/op) but missing from current run\n", r.Name, r.BaselineNs)
			} else {
				fmt.Fprintf(stdout, "FAIL %s: %.1f -> %.1f ns/op (%+.1f%%)\n", r.Name, r.BaselineNs, r.CurrentNs, r.RatioPct)
			}
		}
		if len(regressions) > 0 {
			fmt.Fprintf(stdout, "%d of %d gated benchmarks regressed beyond %.0f%%\n", len(regressions), len(matched), *threshold)
			return 1
		}
		fmt.Fprintln(stdout, "all gated benchmarks within threshold")
		return 0
	}

	in := stdin
	if fs.NArg() > 0 {
		fh, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer fh.Close()
		in = fh
	}
	parsed, err := Parse(in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	blob, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}
	if _, err := stdout.Write(blob); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
