// Command dynamomc runs Monte-Carlo ensembles of dynamo simulations and
// prints the aggregated phase-transition report.  It is a thin CLI over
// dynmon.Ensemble: an ensemble spec (the JSON form of dynmon.EnsembleSpec —
// one system, a base initial family and run spec, N replicas per point of
// an optional parameter sweep) goes in, the EnsembleReport — takeover
// probability with 95% Wilson intervals and rounds-to-takeover quantiles
// per sweep point — comes out as JSON or CSV.
//
//	dynamomc -spec specs/ensembles/mesh-16x16-density.json
//	dynamomc -spec specs/ensembles/mesh-256x256-density-eps-faulty.json -format csv > phase.csv
//	dynamomc -spec - < ensemble.json
//
// The report is a pure function of the spec: replica seeds are derived from
// the master seed with counter-based hashes, so reruns — on any machine,
// any -workers value, any kernel tier — produce byte-identical reports.
// -digest prints the spec's content address (the dynserve /v1/ensembles
// cache key) without running anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/dynmon"
)

func main() {
	var (
		specPath = flag.String("spec", "", "ensemble spec file (dynmon.EnsembleSpec JSON); '-' reads stdin")
		workers  = flag.Int("workers", 0, "replica worker pool bound (0 = GOMAXPROCS)")
		format   = flag.String("format", "json", "report format: json or csv")
		digest   = flag.Bool("digest", false, "print the spec digest and exit without running")
		timeout  = flag.Duration("timeout", 0, "abort the ensemble after this long (0 = no limit)")
	)
	flag.Parse()
	if err := run(*specPath, *workers, *format, *digest, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "dynamomc:", err)
		os.Exit(1)
	}
}

func run(specPath string, workers int, format string, digestOnly bool, timeout time.Duration) error {
	if specPath == "" {
		return fmt.Errorf("-spec is required (a file path, or '-' for stdin)")
	}
	if format != "json" && format != "csv" {
		return fmt.Errorf("unknown -format %q (want json or csv)", format)
	}
	var (
		data []byte
		err  error
	)
	if specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(specPath)
	}
	if err != nil {
		return err
	}
	spec, err := dynmon.ParseEnsembleSpec(data)
	if err != nil {
		return err
	}
	ens, err := dynmon.NewEnsemble(spec, workers)
	if err != nil {
		return err
	}
	if digestOnly {
		fmt.Println(ens.Digest())
		return nil
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	report, err := ens.Run(ctx)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		_, err = os.Stdout.WriteString(report.CSV())
	default:
		var b []byte
		if b, err = report.JSON(); err == nil {
			_, err = os.Stdout.Write(b)
		}
	}
	return err
}
