// Command dynmondload load-tests a running dynmond server: it submits runs
// concurrently (buffered mode, one request = one terminal Result) and
// reports throughput and latency percentiles, optionally as a benchjson/v1
// file that cmd/benchjson gates against a checked-in baseline.
//
//	dynmond -addr :8080 &
//	dynmondload -url http://127.0.0.1:8080 -spec specs/mesh-9x9-minimum.json -n 2000 -c 128 -o BENCH_dynmond.json
//
// The exit status is nonzero when any request fails with a real error;
// 429 shedding is counted separately (it is the server's specified overload
// behavior, not a failure).
//
// With -retries N each shed (429) or unavailable (503) response is retried
// up to N times with capped jittered exponential backoff, honoring the
// server's Retry-After hint; the whole chain shares the -timeout deadline.
// Keep -retries 0 when measuring shedding itself — retries convert shed
// responses into eventual completions.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/dynserve/loadtest"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "dynmond base URL")
		specs   = flag.String("spec", "", "comma-separated spec files to submit round-robin (required)")
		total   = flag.Int("n", 1000, "total submissions")
		conc    = flag.Int("c", 64, "concurrent clients")
		timeout = flag.Duration("timeout", 30*time.Second, "per-submission deadline including retries")
		out     = flag.String("o", "", "write a benchjson/v1 report to this file")
		retries = flag.Int("retries", 0, "retry attempts after a 429/503 (0 = statuses are final)")
		backoff = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff, doubled and jittered per attempt")
		maxWait = flag.Duration("max-backoff", 5*time.Second, "retry backoff cap")
	)
	flag.Parse()

	if *specs == "" {
		fmt.Fprintln(os.Stderr, "dynmondload: -spec is required")
		os.Exit(2)
	}
	var bodies [][]byte
	for _, path := range strings.Split(*specs, ",") {
		b, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynmondload: %v\n", err)
			os.Exit(2)
		}
		bodies = append(bodies, b)
	}

	rep, err := loadtest.Run(context.Background(), loadtest.Options{
		URL:             *url,
		Specs:           bodies,
		Total:           *total,
		Concurrency:     *conc,
		Timeout:         *timeout,
		Retries:         *retries,
		RetryBackoff:    *backoff,
		RetryBackoffMax: *maxWait,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynmondload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("total=%d ok=%d shed=%d errors=%d retries=%d elapsed=%s throughput=%.1f req/s\n",
		rep.Total, rep.OK, rep.Shed, rep.Errors, rep.Retries, rep.Elapsed.Round(time.Millisecond), rep.Throughput)
	fmt.Printf("latency p50=%s p90=%s p99=%s max=%s (concurrency=%d)\n",
		rep.P50, rep.P90, rep.P99, rep.Max, rep.Concurrency)

	if *out != "" {
		b, err := rep.BenchJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynmondload: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dynmondload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "dynmondload: %d requests failed\n", rep.Errors)
		os.Exit(1)
	}
}
