// Command dynamoexp regenerates the paper's tables and figures (the
// experiment index E01..E18 of DESIGN.md) and prints them as text, CSV or
// markdown.  It is a thin CLI over the public repro/dynmon package.
//
// Examples:
//
//	dynamoexp                 # run every experiment
//	dynamoexp -exp E07        # run a single experiment
//	dynamoexp -list           # list the experiment index
//	dynamoexp -exp E09 -csv   # CSV output
//
// Beyond the fixed index, -spec runs an ad-hoc experiment described by a
// spec file (the JSON form of dynmon.FileSpec — the same files
// cmd/dynamosim runs and emits with -emit-spec) and prints its verification
// report:
//
//	dynamoexp -spec specs/mesh-9x9-minimum.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/dynmon"
)

func main() {
	var (
		expID    = flag.String("exp", "", "run only the experiment with this id (e.g. E07)")
		list     = flag.Bool("list", false, "list the experiment index and exit")
		csv      = flag.Bool("csv", false, "print tables as CSV")
		markdown = flag.Bool("markdown", false, "print tables as markdown")
		outDir   = flag.String("out", "", "also write one file per experiment into this directory")
		specFile = flag.String("spec", "", "run the ad-hoc experiment described by this spec file and print its report")
	)
	flag.Parse()

	if *specFile != "" {
		runSpec(*specFile)
		return
	}

	experiments := dynmon.Experiments()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%s  %-60s  paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if *expID != "" {
		e, ok := dynmon.ExperimentByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "dynamoexp: unknown experiment %q (use -list)\n", *expID)
			os.Exit(1)
		}
		experiments = []dynmon.Experiment{e}
	}
	if *outDir != "" {
		format := dynmon.FormatText
		if *csv {
			format = dynmon.FormatCSV
		} else if *markdown {
			format = dynmon.FormatMarkdown
		}
		files, err := dynmon.ExportExperiments(*outDir, experiments, format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynamoexp:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		return
	}
	for _, e := range experiments {
		fmt.Print(dynmon.Banner(fmt.Sprintf("%s  %s", e.ID, e.Title)))
		table := e.Run()
		switch {
		case *csv:
			fmt.Print(table.CSV())
		case *markdown:
			fmt.Print(table.Markdown())
		default:
			fmt.Print(table.Render())
		}
		fmt.Println()
	}
}

// runSpec verifies the system/initial/run triple of a spec file and prints
// the resulting report — the spec-driven twin of the fixed experiment index.
func runSpec(file string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	fs, err := dynmon.ParseFileSpec(data)
	if err != nil {
		fatal(err)
	}
	// FileSpec.Build is the one shared construction path; see dynamosim.
	sys, cons, _, err := fs.Build()
	if err != nil {
		fatal(err)
	}
	fmt.Print(dynmon.Banner(fmt.Sprintf("spec  %s on %s", cons.Name, sys)))
	res, err := sys.RunSpecced(context.Background(), cons.Coloring, fs.Run)
	if err != nil {
		fatal(err)
	}
	fmt.Println(sys.ReportFor(cons, res).Summary())
	fmt.Printf("kernel=%s workers=%d rounds=%d fixed-point=%v cycle=%v\n",
		res.Kernel, res.Workers, res.Rounds, res.FixedPoint, res.Cycle)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynamoexp:", err)
	os.Exit(1)
}
