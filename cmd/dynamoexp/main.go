// Command dynamoexp regenerates the paper's tables and figures (the
// experiment index E01..E18 of DESIGN.md) and prints them as text, CSV or
// markdown.  It is a thin CLI over the public repro/dynmon package.
//
// Examples:
//
//	dynamoexp                 # run every experiment
//	dynamoexp -exp E07        # run a single experiment
//	dynamoexp -list           # list the experiment index
//	dynamoexp -exp E09 -csv   # CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/dynmon"
)

func main() {
	var (
		expID    = flag.String("exp", "", "run only the experiment with this id (e.g. E07)")
		list     = flag.Bool("list", false, "list the experiment index and exit")
		csv      = flag.Bool("csv", false, "print tables as CSV")
		markdown = flag.Bool("markdown", false, "print tables as markdown")
		outDir   = flag.String("out", "", "also write one file per experiment into this directory")
	)
	flag.Parse()

	experiments := dynmon.Experiments()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%s  %-60s  paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if *expID != "" {
		e, ok := dynmon.ExperimentByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "dynamoexp: unknown experiment %q (use -list)\n", *expID)
			os.Exit(1)
		}
		experiments = []dynmon.Experiment{e}
	}
	if *outDir != "" {
		format := dynmon.FormatText
		if *csv {
			format = dynmon.FormatCSV
		} else if *markdown {
			format = dynmon.FormatMarkdown
		}
		files, err := dynmon.ExportExperiments(*outDir, experiments, format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynamoexp:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		return
	}
	for _, e := range experiments {
		fmt.Print(dynmon.Banner(fmt.Sprintf("%s  %s", e.ID, e.Title)))
		table := e.Run()
		switch {
		case *csv:
			fmt.Print(table.CSV())
		case *markdown:
			fmt.Print(table.Markdown())
		default:
			fmt.Print(table.Render())
		}
		fmt.Println()
	}
}
