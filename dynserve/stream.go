package dynserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/dynserve/fault"
)

// Stream event kinds.  A run stream is a sequence of "step" events ending
// with exactly one terminal event: "result" on success, "error" otherwise.
// Job streams may additionally carry "job" (status on attach), "checkpoint"
// (durability cadence fired) and "evicted" (segment parked; re-attach to
// resume) events.
const (
	eventJob        = "job"
	eventStep       = "step"
	eventCheckpoint = "checkpoint"
	eventEvicted    = "evicted"
	eventResult     = "result"
	eventError      = "error"
)

// streamEvent is one wire event.  Result carries the terminal Result's
// exact marshaled bytes (json.RawMessage, not a re-marshal), so the bytes a
// stream delivers are identical to the bytes an offline run prints — the
// determinism contract is preserved through the transport.
type streamEvent struct {
	kind    string
	round   int
	changed int
	status  *JobStatus
	result  []byte
	cached  bool
	err     string
}

// wireForm renders the event as its JSON object.
func (ev streamEvent) wireForm() ([]byte, error) {
	switch ev.kind {
	case eventStep:
		return json.Marshal(struct {
			Event   string `json:"event"`
			Round   int    `json:"round"`
			Changed int    `json:"changed"`
		}{eventStep, ev.round, ev.changed})
	case eventCheckpoint:
		return json.Marshal(struct {
			Event string `json:"event"`
			Round int    `json:"round"`
		}{eventCheckpoint, ev.round})
	case eventEvicted:
		return json.Marshal(struct {
			Event string `json:"event"`
			Round int    `json:"round"`
		}{eventEvicted, ev.round})
	case eventJob:
		return json.Marshal(struct {
			Event string    `json:"event"`
			Job   JobStatus `json:"job"`
		}{eventJob, *ev.status})
	case eventResult:
		return json.Marshal(struct {
			Event  string          `json:"event"`
			Cached bool            `json:"cached,omitempty"`
			Result json.RawMessage `json:"result"`
		}{eventResult, ev.cached, json.RawMessage(ev.result)})
	case eventError:
		return json.Marshal(struct {
			Event string `json:"event"`
			Error string `json:"error"`
		}{eventError, ev.err})
	}
	return nil, fmt.Errorf("dynserve: unknown event kind %q", ev.kind)
}

// resultEvent builds a terminal result event around the exact result bytes.
func resultEvent(resultJSON []byte, cached bool) streamEvent {
	return streamEvent{kind: eventResult, result: resultJSON, cached: cached}
}

// eventWriter is the transport half of a stream: NDJSON or SSE.
type eventWriter interface {
	event(ev streamEvent) error
}

// ndjsonWriter streams events as newline-delimited JSON, flushing each line
// so clients observe rounds live.
type ndjsonWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	flusher, _ := w.(http.Flusher)
	return &ndjsonWriter{w: w, flusher: flusher}
}

func (nw *ndjsonWriter) event(ev streamEvent) error {
	if !nw.started {
		nw.w.Header().Set("Content-Type", "application/x-ndjson")
		nw.w.Header().Set("Cache-Control", "no-store")
		nw.started = true
	}
	b, err := ev.wireForm()
	if err != nil {
		return err
	}
	if _, err := nw.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if nw.flusher != nil {
		nw.flusher.Flush()
	}
	return nil
}

// sseWriter streams events as Server-Sent Events: the event field names the
// kind, the data field carries the same JSON object NDJSON would.
type sseWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
}

func newSSEWriter(w http.ResponseWriter) *sseWriter {
	flusher, _ := w.(http.Flusher)
	return &sseWriter{w: w, flusher: flusher}
}

func (sw *sseWriter) event(ev streamEvent) error {
	if !sw.started {
		sw.w.Header().Set("Content-Type", "text/event-stream")
		sw.w.Header().Set("Cache-Control", "no-store")
		sw.started = true
	}
	b, err := ev.wireForm()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", ev.kind, b); err != nil {
		return err
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
	return nil
}

// writerFor picks the stream transport from the request's Accept header:
// SSE for text/event-stream, NDJSON otherwise.  (Buffered JSON mode is
// handled before streaming starts.)
func writerFor(w http.ResponseWriter, r *http.Request) eventWriter {
	if acceptsSSE(r) {
		return newSSEWriter(w)
	}
	return newNDJSONWriter(w)
}

// streamWriter is writerFor plus the stream-drop failpoint: when armed, the
// returned writer severs the connection mid-stream — the event fails exactly
// as it would if the client's TCP connection had dropped, so tests can prove
// that a detached job survives its watcher vanishing while an inline run is
// correctly abandoned.
func (s *Server) streamWriter(w http.ResponseWriter, r *http.Request) eventWriter {
	out := writerFor(w, r)
	if !fault.Enabled() {
		return out
	}
	return &faultyWriter{inner: out}
}

// faultyWriter injects a connection drop when the stream-drop failpoint
// fires.  Once dropped, every later event fails too — a real peer does not
// come back.
type faultyWriter struct {
	inner   eventWriter
	dropped bool
}

func (fw *faultyWriter) event(ev streamEvent) error {
	if fw.dropped || fault.Fire(fault.StreamDrop) {
		fw.dropped = true
		return errors.New("fault: injected stream drop")
	}
	return fw.inner.event(ev)
}
