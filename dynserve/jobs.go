package dynserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/dynmon"
	"repro/dynserve/fault"
)

// Job lifecycle states.
const (
	jobQueued   = "queued"   // admitted, waiting for a worker slot
	jobRunning  = "running"  // stepping on a worker
	jobEvicted  = "evicted"  // parked on its checkpoint; re-attach resumes it
	jobDone     = "done"     // terminal Result available
	jobFailed   = "failed"   // stopped on an error (including budget expiry)
	jobCanceled = "canceled" // stopped by DELETE /v1/jobs/{id}
)

func jobTerminal(state string) bool {
	return state == jobDone || state == jobFailed || state == jobCanceled
}

// job is one durable run.  It executes detached from any client connection:
// disconnects never cancel it, the per-run budget (Config.RunTimeout) is the
// only clock.  Under load the server can evict it — snapshot a Checkpoint at
// the next round boundary and free the worker — and any later attach resumes
// it bit-identically from that checkpoint, which the engine pins equal to an
// uninterrupted run.
type job struct {
	id       string
	digest   string
	fs       *dynmon.FileSpec
	sys      *dynmon.System
	initial  *dynmon.Coloring
	detached bool // submitted via POST /v1/jobs (eligible for idle eviction)

	evict atomic.Bool // request: park at the next round boundary

	mu         sync.Mutex
	state      string
	round      int // last completed round seen
	cp         *dynmon.Checkpoint
	resultJSON []byte // compact terminal Result bytes (state done)
	errMsg     string // terminal error (state failed/canceled)
	subs       map[*jobSub]struct{}
	cancel     context.CancelFunc // current segment's budget
	finishedAt time.Time
}

// jobSub is one attached stream.  Step events are delivered best-effort (a
// slow client drops rounds rather than stalling the run); the terminal state
// is exact — channel close means "re-read the job", and the job's terminal
// fields are immutable once set.
type jobSub struct {
	ch chan streamEvent
}

// subscribe registers a live-stream subscriber, or returns nil with the
// state when the job is not running (terminal or evicted — the caller then
// replays or resumes).
func (j *job) subscribe() (*jobSub, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobQueued && j.state != jobRunning {
		return nil, j.state
	}
	sub := &jobSub{ch: make(chan streamEvent, 128)}
	j.subs[sub] = struct{}{}
	return sub, j.state
}

func (j *job) unsubscribe(sub *jobSub) {
	j.mu.Lock()
	if _, ok := j.subs[sub]; ok {
		delete(j.subs, sub)
	}
	j.mu.Unlock()
}

// broadcast fans an event to subscribers without blocking the run.
func (j *job) broadcast(ev streamEvent) {
	j.mu.Lock()
	for sub := range j.subs {
		select {
		case sub.ch <- ev:
		default: // lagging subscriber: drop the round, never stall the run
		}
	}
	j.mu.Unlock()
}

// closeSubs detaches and closes every subscriber channel (segment over).
func (j *job) closeSubs() {
	j.mu.Lock()
	subs := j.subs
	j.subs = make(map[*jobSub]struct{})
	j.mu.Unlock()
	for sub := range subs {
		close(sub.ch)
	}
}

// checkpointSink is the job's durability sink for the cadence
// (dynmon.CheckpointEvery): persist first (when a store is configured),
// then retain in memory — so the status a client polls never reports a
// checkpoint round the disk doesn't have.  A persist failure propagates
// through the stream and fails this job only.
func (s *Server) checkpointSink(j *job) func(*dynmon.Checkpoint) error {
	return func(cp *dynmon.Checkpoint) error {
		if s.store != nil {
			if err := s.store.SaveCheckpoint(j.id, cp); err != nil {
				s.metrics.CheckpointWriteErrors.Add(1)
				return err
			}
			s.metrics.CheckpointsPersisted.Add(1)
		}
		j.mu.Lock()
		j.cp = cp
		j.mu.Unlock()
		j.broadcast(streamEvent{kind: eventCheckpoint, round: cp.Round})
		return nil
	}
}

// persistJob snapshots a job's meta state to the store.  Transitions are
// already serialized per job (one runner segment at a time; cancellation of
// a parked job cannot race a runner), so last-writer-wins atomic replace is
// sound.
func (s *Server) persistJob(j *job) {
	if s.store == nil {
		return
	}
	j.mu.Lock()
	m := jobMeta{
		ID:              j.id,
		Digest:          j.digest,
		State:           j.state,
		Detached:        j.detached,
		Round:           j.round,
		CheckpointRound: -1,
		Error:           j.errMsg,
	}
	if j.cp != nil {
		m.CheckpointRound = j.cp.Round
	}
	if !j.finishedAt.IsZero() {
		m.FinishedAtNanos = j.finishedAt.UnixNano()
	}
	j.mu.Unlock()
	s.store.SaveMeta(m)
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Digest is the content address of the submitted run.
	Digest string `json:"digest"`
	// Round is the last completed round.
	Round int `json:"round"`
	// CheckpointRound is the round of the newest durable checkpoint, -1
	// when none has been taken yet.
	CheckpointRound int `json:"checkpoint_round"`
	// Error carries the terminal error for failed/canceled jobs.
	Error string `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Digest: j.digest, Round: j.round, CheckpointRound: -1}
	if j.cp != nil {
		st.CheckpointRound = j.cp.Round
	}
	st.Error = j.errMsg
	return st
}

// checkpointJSON returns the newest checkpoint's wire form, or nil.
func (j *job) checkpointJSON() ([]byte, error) {
	j.mu.Lock()
	cp := j.cp
	j.mu.Unlock()
	if cp == nil {
		return nil, nil
	}
	return cp.JSON()
}

// jobTable tracks jobs by id.  Terminal jobs linger for the retention
// window (so clients can still fetch their result), then purge lazily.
type jobTable struct {
	retention time.Duration
	seq       atomic.Int64

	// onPurge, when set, is called outside the table lock with the ids of
	// purged jobs — the store hook that deletes their directories.
	onPurge func(ids []string)

	mu   sync.Mutex
	byID map[string]*job
}

func newJobTable(retention time.Duration) *jobTable {
	return &jobTable{retention: retention, byID: make(map[string]*job)}
}

func (t *jobTable) nextSeq() int64 { return t.seq.Add(1) }

// setSeq advances the sequence to at least n (store recovery: never reuse a
// persisted id).
func (t *jobTable) setSeq(n int64) {
	for {
		cur := t.seq.Load()
		if cur >= n-1 || t.seq.CompareAndSwap(cur, n-1) {
			return
		}
	}
}

func (t *jobTable) put(j *job) {
	t.mu.Lock()
	t.byID[j.id] = j
	purged := t.purgeLocked()
	t.mu.Unlock()
	t.notifyPurge(purged)
}

func (t *jobTable) notifyPurge(ids []string) {
	if t.onPurge != nil && len(ids) > 0 {
		t.onPurge(ids)
	}
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	j, ok := t.byID[id]
	t.mu.Unlock()
	return j, ok
}

func (t *jobTable) remove(id string) {
	t.mu.Lock()
	delete(t.byID, id)
	t.mu.Unlock()
}

func (t *jobTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// list returns every job's status, sorted by id, purging expired ones.
func (t *jobTable) list() []JobStatus {
	t.mu.Lock()
	purged := t.purgeLocked()
	jobs := make([]*job, 0, len(t.byID))
	for _, j := range t.byID {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	t.notifyPurge(purged)
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// purgeLocked drops terminal jobs past the retention window, returning the
// purged ids for the onPurge store hook.
func (t *jobTable) purgeLocked() []string {
	cutoff := time.Now().Add(-t.retention)
	var purged []string
	for id, j := range t.byID {
		j.mu.Lock()
		expired := jobTerminal(j.state) && !j.finishedAt.IsZero() && j.finishedAt.Before(cutoff)
		j.mu.Unlock()
		if expired {
			delete(t.byID, id)
			purged = append(purged, id)
		}
	}
	return purged
}

// evictAll asks every live job to park at its next round boundary — the
// drain path: workers free up, state survives as checkpoints.
func (t *jobTable) evictAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, j := range t.byID {
		j.mu.Lock()
		live := j.state == jobQueued || j.state == jobRunning
		j.mu.Unlock()
		if live {
			j.evict.Store(true)
		}
	}
}

// evictOneIdle asks one running detached job with no attached streams to
// park — the load-shedding nudge: when admission sheds a request, an idle
// background job gives back its worker instead of starving interactive
// traffic.
func (t *jobTable) evictOneIdle() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, j := range t.byID {
		j.mu.Lock()
		idle := j.state == jobRunning && j.detached && len(j.subs) == 0 && !j.evict.Load()
		j.mu.Unlock()
		if idle {
			j.evict.Store(true)
			return
		}
	}
}

// newJob registers a job for a parsed spec.  The system and initial
// construction are built once here; the runner only steps.  With a store
// configured, the spec and initial state land on disk before the job is
// visible — from its first moment the job survives a crash.
func (s *Server) newJob(fs *dynmon.FileSpec, digest string, detached bool) (*job, error) {
	sys, initial, err := s.buildRun(fs)
	if err != nil {
		return nil, err
	}
	j := &job{
		id:       s.newJobID(),
		digest:   digest,
		fs:       fs,
		sys:      sys,
		initial:  initial,
		detached: detached,
		state:    jobEvicted, // parked with no checkpoint = not yet started
		subs:     make(map[*jobSub]struct{}),
	}
	if s.store != nil {
		if err := s.store.SaveSpec(j.id, fs); err != nil {
			return nil, fmt.Errorf("dynserve: persisting job spec: %w", err)
		}
		s.persistJob(j)
	}
	s.jobs.put(j)
	return j, nil
}

// completeFromCache settles a just-created job with a cached terminal
// result, without ever occupying a worker.
func (s *Server) completeFromCache(j *job, resJSON []byte) {
	j.mu.Lock()
	j.state = jobDone
	j.resultJSON = resJSON
	j.finishedAt = time.Now()
	j.mu.Unlock()
	if s.store != nil {
		s.store.SaveResult(j.id, resJSON)
		s.persistJob(j)
	}
}

// startJob admits the job (shed/drain decisions happen here, synchronously)
// and hands it to a runner goroutine.  Starting an already-live job is a
// no-op; starting a terminal one is an error.
func (s *Server) startJob(j *job) error {
	j.mu.Lock()
	switch {
	case j.state == jobQueued || j.state == jobRunning:
		j.mu.Unlock()
		return nil
	case jobTerminal(j.state):
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("dynserve: job %s is %s", j.id, state)
	}
	resumed := j.cp != nil
	j.state = jobQueued
	j.evict.Store(false)
	j.mu.Unlock()

	wait, err := s.admitAsync()
	if err != nil {
		j.mu.Lock()
		j.state = jobEvicted
		j.mu.Unlock()
		return err
	}
	if resumed {
		s.metrics.JobsResumed.Add(1)
	}
	s.persistJob(j)
	s.running.Add(1)
	go func() {
		defer s.running.Done()
		s.runJob(j, wait)
	}()
	return nil
}

// runJob executes one segment of a job: claim a worker slot, stream rounds
// from the initial configuration (or the parked checkpoint), broadcast them,
// and settle as done, failed, canceled or evicted.  A panic anywhere in the
// segment — the engine, a rule kernel, the fault-injected worker-panic
// failpoint — fails this job only: the deferred recover settles it as
// failed, the deferred release returns the slot, the process stays up.
func (s *Server) runJob(j *job, wait func(context.Context) (func(), error)) {
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.PanicsRecovered.Add(1)
			s.settleErr(j, fmt.Errorf("dynserve: job runner panicked: %v", rec))
		}
	}()

	ctx, cancel := context.WithCancel(s.baseCtx)
	if s.cfg.RunTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.cfg.RunTimeout)
	}
	defer cancel()

	j.mu.Lock()
	j.cancel = cancel
	cp := j.cp
	sys, initial := j.sys, j.initial
	j.mu.Unlock()

	release, err := wait(ctx)
	if err != nil {
		s.settleErr(j, err)
		return
	}
	defer release()

	if sys == nil {
		// Recovered job: the system was deliberately not rebuilt at boot
		// (recovery stays cheap and damage-tolerant); build it now, on the
		// worker's own time.
		if sys, initial, err = s.buildRun(j.fs); err != nil {
			s.settleErr(j, err)
			return
		}
		j.mu.Lock()
		j.sys, j.initial = sys, initial
		j.mu.Unlock()
	}

	if j.evict.Load() {
		// Evicted while waiting for a slot: park again without stepping
		// (the retained checkpoint, if any, stays the resume point).
		s.park(j, cp)
		return
	}

	j.mu.Lock()
	j.state = jobRunning
	j.mu.Unlock()
	s.persistJob(j)
	s.metrics.RunsStarted.Add(1)
	segStart := time.Now()

	opts := []dynmon.RunOption{dynmon.WithRunSpec(j.fs.Run)}
	if s.cfg.CheckpointEvery > 0 {
		opts = append(opts, dynmon.CheckpointEvery(s.cfg.CheckpointEvery, s.checkpointSink(j)))
	}
	var seq iter.Seq2[*dynmon.Step, error]
	if cp != nil {
		seq = sys.ResumeSteps(ctx, cp, opts...)
	} else {
		seq = sys.Steps(ctx, initial, opts...)
	}

	for st, err := range seq {
		if err != nil {
			s.settleErr(j, err)
			return
		}
		if fault.Fire(fault.WorkerPanic) {
			panic("fault: injected worker panic")
		}
		s.metrics.Steps.Add(1)
		j.mu.Lock()
		j.round = st.Round()
		j.mu.Unlock()
		j.broadcast(streamEvent{kind: eventStep, round: st.Round(), changed: st.Changed()})
		if st.Done() {
			s.observeRunDuration(time.Since(segStart))
			s.settleDone(j, st.Result())
			return
		}
		if j.evict.Load() {
			// Park at an exact round boundary: the checkpoint is taken from
			// this step, so no completed round is lost and the resumed run
			// is bit-identical to an uninterrupted one.
			cp, cerr := st.Checkpoint()
			if cerr != nil {
				s.settleErr(j, cerr)
				return
			}
			s.park(j, cp)
			return
		}
	}
	s.settleErr(j, errors.New("dynserve: run ended without a terminal result"))
}

// park settles a segment as evicted.  The eviction checkpoint is persisted
// before the job is declared parked; a durable-write failure here fails the
// job rather than silently parking it on state the disk doesn't have.
func (s *Server) park(j *job, cp *dynmon.Checkpoint) {
	if s.store != nil && cp != nil {
		if err := s.store.SaveCheckpoint(j.id, cp); err != nil {
			s.metrics.CheckpointWriteErrors.Add(1)
			s.settleErr(j, fmt.Errorf("dynserve: persisting eviction checkpoint: %w", err))
			return
		}
		s.metrics.CheckpointsPersisted.Add(1)
	}
	j.mu.Lock()
	j.state = jobEvicted
	j.cp = cp
	j.cancel = nil
	j.mu.Unlock()
	s.persistJob(j)
	s.metrics.JobsEvicted.Add(1)
	j.closeSubs()
}

// settleDone records the terminal Result: its compact JSON is the job's
// immutable answer, and — because the digest addresses the run's complete
// description — exactly the bytes the result cache may serve for it.
func (s *Server) settleDone(j *job, res *dynmon.Result) {
	b, err := json.Marshal(res)
	if err != nil {
		s.settleErr(j, err)
		return
	}
	kernel := res.Kernel.String()
	j.mu.Lock()
	j.state = jobDone
	j.resultJSON = b
	j.cancel = nil
	j.finishedAt = time.Now()
	j.mu.Unlock()
	if s.store != nil {
		s.store.SaveResult(j.id, b)
		s.persistJob(j)
	}
	s.metrics.RunsCompleted.Add(1)
	s.metrics.CountKernel(kernel)
	s.results.Put(j.digest, &cachedResult{json: b, kernel: kernel})
	j.closeSubs()
}

// settleErr records a terminal failure (or cancellation).
func (s *Server) settleErr(j *job, err error) {
	state := jobFailed
	if errors.Is(err, context.Canceled) {
		state = jobCanceled
	}
	j.mu.Lock()
	j.state = state
	j.errMsg = err.Error()
	j.cancel = nil
	j.finishedAt = time.Now()
	j.mu.Unlock()
	s.persistJob(j)
	s.metrics.RunsFailed.Add(1)
	j.closeSubs()
}

// cancelJob stops a job: live segments are canceled at the next round
// boundary, parked ones settle immediately.
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	switch {
	case jobTerminal(j.state):
		j.mu.Unlock()
		return
	case j.state == jobEvicted:
		j.state = jobCanceled
		j.errMsg = context.Canceled.Error()
		j.finishedAt = time.Now()
		j.mu.Unlock()
		s.persistJob(j)
		j.closeSubs()
		return
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
