package dynserve

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/dynserve/loadtest"
)

// TestLoadThousandsOfSubmissions is the in-process load pin: thousands of
// concurrent submissions against a bounded pool complete with zero errors —
// every request either finishes with a Result or is shed with 429, nothing
// hangs or breaks — and the report serializes to valid benchjson.
func TestLoadThousandsOfSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 256})

	rep, err := loadtest.Run(context.Background(), loadtest.Options{
		URL:         ts.URL,
		Specs:       [][]byte{goldenSpec(t, "mesh-9x9-minimum.json"), goldenSpec(t, "ba-200-hubs.json")},
		Total:       2000,
		Concurrency: 128,
		Timeout:     60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d requests failed: %+v", rep.Errors, rep)
	}
	if rep.OK+rep.Shed != rep.Total {
		t.Fatalf("ok=%d shed=%d does not account for total=%d", rep.OK, rep.Shed, rep.Total)
	}
	if rep.OK == 0 {
		t.Fatal("no request completed")
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible latency percentiles: %+v", rep)
	}

	b, err := rep.BenchJSON()
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Schema     string `json:"schema"`
		Benchmarks []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != "benchjson/v1" || len(f.Benchmarks) != 4 {
		t.Fatalf("bench report schema=%q benchmarks=%d, want benchjson/v1 with 4", f.Schema, len(f.Benchmarks))
	}
}

// TestLoadRetriesDrainShedBacklog pins client resilience: the same cold
// burst that sheds under -retries 0 completes fully when shed responses are
// retried with backoff — the Retry-After hint plus the result cache turn
// every 429 into an eventual 200, with zero errors.
func TestLoadRetriesDrainShedBacklog(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	rep, err := loadtest.Run(context.Background(), loadtest.Options{
		URL:          ts.URL,
		Specs:        [][]byte{longSpec(t)},
		Total:        16,
		Concurrency:  16,
		Timeout:      120 * time.Second,
		Retries:      10,
		RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d requests failed: %+v", rep.Errors, rep)
	}
	if rep.OK != rep.Total {
		t.Fatalf("ok=%d shed=%d with retries enabled, want every one of %d to complete", rep.OK, rep.Shed, rep.Total)
	}
	if rep.Retries == 0 {
		t.Fatalf("retries=0: the burst never hit admission control, test proves nothing: %+v", rep)
	}
}

// TestLoadShedsWithTooManyRequests pins admission control: a cold burst of
// identical slow specs against one worker and a tiny queue must shed with
// 429 rather than queue without bound — and still complete some runs.
func TestLoadShedsWithTooManyRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	rep, err := loadtest.Run(context.Background(), loadtest.Options{
		URL:         ts.URL,
		Specs:       [][]byte{longSpec(t)},
		Total:       32,
		Concurrency: 32,
		Timeout:     120 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d requests failed: %+v", rep.Errors, rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("no request was shed under a cold burst: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("no request completed under shedding: %+v", rep)
	}
}
