// Package dynserve turns the dynmon library into infrastructure: an HTTP
// service ("dynmond", see cmd/dynmond) that accepts declarative run specs,
// executes them on a bounded worker pool with admission control, and streams
// each round back as NDJSON or Server-Sent Events, ending with the terminal
// Result.
//
// The design leans entirely on the library's determinism contract.  Every
// run is a pure function of its wire description (dynmon.FileSpec: system +
// initial + run), so:
//
//   - Results are cached by canonical spec digest (FileSpec.Digest).  Equal
//     digests imply byte-identical terminal Results, which makes cache hits
//     provably correct — the cache can only ever return exactly the bytes a
//     fresh run would produce.
//   - Long runs are durable jobs: the server snapshots them on a checkpoint
//     cadence (dynmon.CheckpointEvery), can evict them under load, and
//     resumes bit-identically when a client re-attaches (GET /v1/jobs/{id})
//     — the engine pins resumed runs equal to uninterrupted ones.
//
// Endpoints:
//
//	POST   /v1/runs                submit a spec (or a checkpoint) and stream
//	                               the run: NDJSON by default, SSE with
//	                               Accept: text/event-stream, buffered
//	                               terminal Result JSON with
//	                               Accept: application/json
//	POST   /v1/batch               submit a batch spec (one system + run,
//	                               many initial items) and get one Result
//	                               per item keyed by per-item digest; items
//	                               share the /v1/runs result cache, and
//	                               eligible ensembles step on the
//	                               bit-sliced 64-replicas-per-word tier
//	POST   /v1/ensembles           submit an ensemble spec
//	                               (dynmon.EnsembleSpec: system + run +
//	                               replicas + seed + optional sweep) and get
//	                               the Monte-Carlo report; cached whole by
//	                               EnsembleSpec.Digest — the report is a
//	                               pure function of the spec, so a hit
//	                               returns exactly the bytes a fresh run
//	                               would produce and costs no worker slot
//	POST   /v1/jobs                submit a spec as a detached job; returns
//	                               202 with the job id immediately
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           (re-)attach to a job's stream; resumes an
//	                               evicted job from its checkpoint
//	GET    /v1/jobs/{id}/checkpoint  latest durable checkpoint of the job
//	POST   /v1/jobs/{id}/evict     checkpoint the job and free its worker
//	DELETE /v1/jobs/{id}           cancel the job
//	GET    /healthz                liveness: 200 whenever the process serves
//	GET    /readyz                 readiness: 503 during startup recovery and
//	                               while draining, 200 otherwise
//	GET    /metrics                Prometheus text metrics
//
// Admission control keeps the server upright under overload: at most
// Config.Workers runs execute at once, at most Config.QueueDepth submissions
// wait for a slot, and everything beyond that is shed with 429 rather than
// queued into collapse — the Retry-After on a shed reflects the actual queue
// pressure.  Per-request budgets ride the ordinary context plumbing — the
// engine observes cancellation at every round boundary.
//
// With Config.DataDir set, jobs are durable across crashes: every job's
// spec, state and newest checkpoint live on disk (atomic replace writes), a
// restarted server re-attaches parked jobs and restarts previously-running
// ones from their last checkpoint, and — because resumed runs are pinned
// bit-identical to uninterrupted ones — the recovered terminal Result is
// byte-for-byte the one the crash interrupted.  Failure paths (worker
// panics, checkpoint I/O errors, dropped streams) are testable via the
// repro/dynserve/fault failpoint package; injected worker panics and
// checkpoint-write errors fail only the affected job.
package dynserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/dynmon"
	"repro/dynserve/fault"
)

// Config tunes the server.  The zero value is usable: every field has a
// production-shaped default, applied by New.
type Config struct {
	// Workers bounds the number of simulations executing concurrently
	// (default GOMAXPROCS).  This is the Session-style pool bound: the unit
	// of parallelism is the request, so each run steps sequentially.
	Workers int
	// QueueDepth bounds how many admitted submissions may wait for a worker
	// slot (default 64).  Beyond it the server sheds with 429.
	QueueDepth int
	// CacheEntries bounds the result cache (default 1024 terminal results).
	CacheEntries int
	// SystemCacheEntries bounds the built-system cache (default 64 systems);
	// systems are immutable and safely shared across runs, so caching them
	// amortizes substrate construction (graph generation, CSR indexing).
	SystemCacheEntries int
	// MaxRequestBytes caps request bodies (default 1 MiB).  Oversized specs
	// are rejected with 413 before any parsing.
	MaxRequestBytes int64
	// CheckpointEvery is the durability cadence in rounds (default 64):
	// every running job keeps a checkpoint at most this many rounds old, the
	// state evicted jobs resume from.  0 disables cadence checkpoints (jobs
	// then checkpoint only at eviction steps).
	CheckpointEvery int
	// RunTimeout is the per-run budget (default 5m; <0 disables).  It rides
	// context cancellation: a run over budget stops at the next round
	// boundary and the job reports the cancellation.
	RunTimeout time.Duration
	// JobRetention is how long terminal jobs stay listable (default 15m).
	JobRetention time.Duration
	// DataDir, when set, makes jobs durable: specs, states and checkpoints
	// persist under this directory (atomic write-temp → fsync → rename) and
	// a restarted server recovers them — parked jobs re-attach, jobs that
	// were running restart from their newest checkpoint.  Empty keeps jobs
	// in memory only.
	DataDir string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.SystemCacheEntries <= 0 {
		c.SystemCacheEntries = 64
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = 5 * time.Minute
	}
	if c.RunTimeout < 0 {
		c.RunTimeout = 0
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 15 * time.Minute
	}
	return c
}

// Server is the dynmond HTTP service.  Create one with New, mount Handler on
// any http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *Metrics
	results *lruCache // FileSpec digest -> cachedResult
	systems *lruCache // system Spec digest -> *dynmon.System
	jobs    *jobTable
	store   *Store // nil without Config.DataDir

	// Admission: sem holds the worker slots, queued counts waiters.
	sem    chan struct{}
	queued atomic.Int64

	// avgRunNanos is an EWMA of recent run durations, the basis of the
	// queue-pressure Retry-After estimate on shed responses.
	avgRunNanos atomic.Int64

	// sysBuild serializes substrate construction per digest so a thundering
	// herd of identical cold specs builds one system, not N.
	sysBuild sync.Mutex

	ready    atomic.Bool // startup recovery finished; /readyz gates on this
	draining atomic.Bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	running  sync.WaitGroup
}

// cachedResult is one terminal result by digest: the exact bytes a fresh run
// marshals to.
type cachedResult struct {
	json   []byte
	kernel string
}

// New returns a ready Server.  With Config.DataDir set it opens the durable
// job store and recovers persisted jobs: every job is registered before New
// returns (so ids resolve immediately), while previously-running jobs
// restart from their checkpoints in the background — /readyz answers 503
// until that recovery pass has finished.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		metrics: NewMetrics(),
		sem:     make(chan struct{}, cfg.Workers),
	}
	s.results = newLRUCache(cfg.CacheEntries, func() { s.metrics.CacheEvictions.Add(1) })
	s.systems = newLRUCache(cfg.SystemCacheEntries, nil)
	s.jobs = newJobTable(cfg.JobRetention)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.metrics.QueueDepth = func() int64 { return s.queued.Load() }
	s.metrics.InFlight = func() int64 { return int64(len(s.sem)) }
	s.metrics.CacheEntries = func() int64 { return int64(s.results.Len()) }
	s.metrics.JobsLive = func() int64 { return int64(s.jobs.Len()) }
	s.metrics.Ready = func() int64 {
		if s.ready.Load() && !s.draining.Load() {
			return 1
		}
		return 0
	}
	s.metrics.FaultsFired = fault.FiredTotal
	s.routes()

	if cfg.DataDir == "" {
		s.ready.Store(true)
		return s, nil
	}
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s.store = store
	s.jobs.onPurge = func(ids []string) {
		for _, id := range ids {
			store.DeleteJob(id)
		}
	}
	restart, err := s.recoverJobs()
	if err != nil {
		return nil, err
	}
	go s.finishRecovery(restart)
	return s, nil
}

// Handler returns the server's HTTP handler: the endpoint mux behind the
// panic-recovery middleware, so a handler panic answers 500 and bumps a
// counter instead of killing the connection opaquely.
func (s *Server) Handler() http.Handler { return s.withRecovery(s.mux) }

// withRecovery is the handler-chain recovery layer.  It also hosts the
// handler-panic failpoint, so fault injection exercises exactly this path.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // deliberate abort, not a fault
				panic(rec)
			}
			s.metrics.PanicsRecovered.Add(1)
			// Best effort: if the handler already streamed a partial body the
			// status line is gone, but the connection still ends.
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
		}()
		if fault.Fire(fault.HandlerPanic) {
			panic("fault: injected handler panic")
		}
		next.ServeHTTP(w, r)
	})
}

// Metrics exposes the server's counters (for embedding, e.g. expvar).
func (s *Server) Metrics() *Metrics { return s.metrics }

// routes mounts the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/ensembles", s.handleEnsemble)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleAttachJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleJobCheckpoint)
	s.mux.HandleFunc("POST /v1/jobs/{id}/evict", s.handleEvictJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.metrics.ServePrometheus)
}

// Drain gracefully stops the server: new submissions are refused with 503,
// running jobs are asked to evict (checkpointing their state), and Drain
// waits for every runner to settle — up to ctx's deadline, after which the
// base context is canceled and stragglers stop at their next round boundary.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.jobs.evictAll()
	done := make(chan struct{})
	go func() {
		s.running.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Admission errors.
var (
	errShed     = errors.New("dynserve: queue full, request shed")
	errDraining = errors.New("dynserve: server is draining")
)

// admitAsync makes the admission decision synchronously — errShed when the
// queue bound is exceeded (admission control sheds instead of queuing into
// collapse), errDraining during shutdown — and returns a wait func that
// claims a worker slot, blocking until one frees or the context ends.  The
// split lets job submission answer 202/429 immediately while the runner
// waits for its slot.  On a shed it also nudges an idle detached job to
// evict, so sustained pressure frees capacity instead of starving.
func (s *Server) admitAsync() (func(ctx context.Context) (func(), error), error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.metrics.Shed.Add(1)
		s.jobs.evictOneIdle()
		return nil, errShed
	}
	return func(ctx context.Context) (func(), error) {
		defer s.queued.Add(-1)
		select {
		case s.sem <- struct{}{}:
			return func() { <-s.sem }, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, nil
}

// acquire is the synchronous form of admitAsync: admit and claim in one
// call, as the streaming run endpoint needs.
func (s *Server) acquire(ctx context.Context) (func(), error) {
	wait, err := s.admitAsync()
	if err != nil {
		return nil, err
	}
	return wait(ctx)
}

// systemFor builds (or returns the cached) System for a canonical system
// spec digest.
func (s *Server) systemFor(digest string, spec *dynmon.Spec) (*dynmon.System, error) {
	if v, ok := s.systems.Get(digest); ok {
		return v.(*dynmon.System), nil
	}
	// One build per cold digest: substrate construction (graph generation,
	// CSR indexing) can be the most expensive part of a request, and a
	// thundering herd of identical specs should pay it once.
	s.sysBuild.Lock()
	defer s.sysBuild.Unlock()
	if v, ok := s.systems.Get(digest); ok {
		return v.(*dynmon.System), nil
	}
	sys, err := spec.New()
	if err != nil {
		return nil, err
	}
	s.systems.Put(digest, sys)
	return sys, nil
}

// newJobID mints a job id unique across the store's whole lifetime: the
// sequence high-water mark is persisted, so restarts never reuse an id.
func (s *Server) newJobID() string {
	seq := s.jobs.nextSeq()
	if s.store != nil {
		s.store.SaveNextSeq(seq + 1)
	}
	return fmt.Sprintf("j%06d", seq)
}

// observeRunDuration feeds the service-time EWMA behind the Retry-After
// estimate (α = 1/8; a heuristic, so the racy read-modify-write is fine).
func (s *Server) observeRunDuration(d time.Duration) {
	old := s.avgRunNanos.Load()
	if old == 0 {
		s.avgRunNanos.Store(int64(d))
		return
	}
	s.avgRunNanos.Store(old + (int64(d)-old)/8)
}

// retryAfterSeconds estimates when a shed client should retry: the current
// queue drained at the observed service rate, clamped to [1s, 60s].  Before
// any run has completed the estimate is the 1s floor.
func (s *Server) retryAfterSeconds() string {
	secs := 1
	if avg := s.avgRunNanos.Load(); avg > 0 {
		est := time.Duration((s.queued.Load() + 1) * avg / int64(s.cfg.Workers))
		secs = int((est + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		if secs > 60 {
			secs = 60
		}
	}
	return strconv.Itoa(secs)
}

// recoverJobs registers every persisted job synchronously (ids resolve the
// moment New returns) and reports which ones need restarting.  Per-job
// damage — truncated checkpoint, garbage metadata — fails that job and is
// surfaced on its status; it never stops the server from booting.
func (s *Server) recoverJobs() ([]*job, error) {
	persisted, nextSeq, err := s.store.Load()
	if err != nil {
		return nil, err
	}
	s.jobs.setSeq(nextSeq)
	var restart []*job
	for _, pj := range persisted {
		j, needsRestart := s.rebuildJob(pj)
		s.jobs.put(j)
		s.metrics.JobsRecovered.Add(1)
		if needsRestart {
			restart = append(restart, j)
		}
	}
	return restart, nil
}

// rebuildJob turns one persisted entry back into a live job.  The System is
// not built here — recovery must stay cheap and damage-tolerant; the runner
// builds it on the job's first restarted segment.
func (s *Server) rebuildJob(pj persistedJob) (*job, bool) {
	j := &job{
		id:       pj.id,
		digest:   pj.meta.Digest,
		detached: pj.meta.Detached,
		round:    pj.meta.Round,
		subs:     make(map[*jobSub]struct{}),
	}
	fail := func(err error) (*job, bool) {
		j.state = jobFailed
		j.errMsg = err.Error()
		j.finishedAt = time.Now()
		s.metrics.JobsRecoveryFailed.Add(1)
		s.persistJob(j)
		return j, false
	}
	if pj.err != nil {
		return fail(pj.err)
	}
	fs, err := dynmon.ParseFileSpec(pj.spec)
	if err != nil {
		return fail(fmt.Errorf("persisted spec corrupted: %w", err))
	}
	j.fs = fs
	if pj.checkpoint != nil {
		cp, err := dynmon.ParseCheckpoint(pj.checkpoint)
		if err != nil {
			return fail(fmt.Errorf("persisted checkpoint corrupted: %w", err))
		}
		j.cp = cp
		if cp.Round > j.round {
			j.round = cp.Round
		}
	}
	switch pj.meta.State {
	case jobDone:
		j.state = jobDone
		j.resultJSON = pj.result
		j.finishedAt = finishedAtOf(pj.meta)
		// Warm the result cache: equal digests still imply byte-identical
		// Results, so the persisted bytes are exactly servable.
		s.results.Put(j.digest, &cachedResult{json: pj.result, kernel: kernelOf(pj.result)})
		return j, false
	case jobFailed, jobCanceled:
		j.state = pj.meta.State
		j.errMsg = pj.meta.Error
		j.finishedAt = finishedAtOf(pj.meta)
		return j, false
	case jobEvicted:
		// Parked at shutdown (or crash between segments): stays parked; the
		// next attach resumes it from its checkpoint.
		j.state = jobEvicted
		return j, false
	case jobQueued, jobRunning:
		// Interrupted mid-run by the crash: park it on whatever checkpoint
		// survived (none means restart from round 0 — still exact, the run
		// is a pure function of its spec) and restart it.
		j.state = jobEvicted
		return j, true
	default:
		return fail(fmt.Errorf("persisted state %q unknown", pj.meta.State))
	}
}

// finishRecovery restarts the jobs the crash interrupted, then flips the
// server ready.  A restart refused by admission (pool already saturated)
// leaves the job parked — any later attach resumes it, nothing is lost.
func (s *Server) finishRecovery(restart []*job) {
	fault.Fire(fault.RecoverySlow)
	for _, j := range restart {
		s.startJob(j)
	}
	s.ready.Store(true)
}

// finishedAtOf recovers a terminal job's finish time, defaulting to "now"
// (restarting the retention clock) when the persisted stamp is missing.
func finishedAtOf(m jobMeta) time.Time {
	if m.FinishedAtNanos > 0 {
		return time.Unix(0, m.FinishedAtNanos)
	}
	return time.Now()
}

// kernelOf extracts the kernel tier name from terminal Result bytes, for
// the per-kernel metrics of cache hits served from a recovered store.
func kernelOf(resJSON []byte) string {
	var probe struct {
		Kernel string `json:"kernel"`
	}
	if err := json.Unmarshal(resJSON, &probe); err != nil {
		return "unknown"
	}
	return probe.Kernel
}
