package dynserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/dynmon"
	"repro/dynserve/fault"
)

// Store persists jobs under Config.DataDir so a crash (kill -9, OOM) loses
// at most CheckpointEvery rounds of progress and no job identity.  Layout:
//
//	<data-dir>/
//	  manifest.json            {"version":1,"next_seq":N} — id continuity
//	  jobs/<id>/
//	    spec.json              the submitted FileSpec (canonical wire form)
//	    meta.json              state, digest, rounds, terminal error
//	    checkpoint.json        newest durable checkpoint (cadence or eviction)
//	    result.json            terminal Result bytes (state done)
//
// Every file is replaced atomically: write <name>.tmp in the same
// directory, fsync, rename over <name>, fsync the directory.  A crash
// mid-write therefore leaves the previous version intact — recovery never
// sees a half-written file, only a missing or an old one.  Combined with
// the engine's checkpoint determinism (a resumed run is bit-identical to an
// uninterrupted one), recovery is exact: the Result a recovered job serves
// is byte-for-byte the Result the crash interrupted.
type Store struct {
	root string
}

// Filenames inside a job directory.
const (
	storeSpecFile       = "spec.json"
	storeMetaFile       = "meta.json"
	storeCheckpointFile = "checkpoint.json"
	storeResultFile     = "result.json"
)

// storeManifest is the root manifest: schema version and the id sequence
// high-water mark, so restarted servers never reuse a job id.
type storeManifest struct {
	Version int   `json:"version"`
	NextSeq int64 `json:"next_seq"`
}

// jobMeta is the persisted slice of a job's state — everything recovery
// needs besides the spec, checkpoint and result files.
type jobMeta struct {
	ID              string `json:"id"`
	Digest          string `json:"digest"`
	State           string `json:"state"`
	Detached        bool   `json:"detached"`
	Round           int    `json:"round"`
	CheckpointRound int    `json:"checkpoint_round"`
	Error           string `json:"error,omitempty"`
	FinishedAtNanos int64  `json:"finished_at_unix_ns,omitempty"`
}

// OpenStore opens (creating if needed) a job store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("dynserve: opening job store: %w", err)
	}
	return &Store{root: dir}, nil
}

func (st *Store) jobDir(id string) string { return filepath.Join(st.root, "jobs", id) }

// atomicWrite replaces path with data: temp file in the same directory,
// fsync, rename, directory fsync.  Readers see the old bytes or the new
// bytes, never a mix.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms reject fsync on directories; the rename is still
	// atomic there, so degrade silently.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// SaveSpec persists a job's submitted FileSpec (once, at creation).
func (st *Store) SaveSpec(id string, fs *dynmon.FileSpec) error {
	b, err := fs.JSON()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(st.jobDir(id), 0o755); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(st.jobDir(id), storeSpecFile), b)
}

// SaveMeta persists a job's state snapshot (every lifecycle transition).
func (st *Store) SaveMeta(m jobMeta) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(st.jobDir(m.ID), 0o755); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(st.jobDir(m.ID), storeMetaFile), b)
}

// SaveCheckpoint persists a job's newest checkpoint — the durability
// cadence sink and the eviction snapshot.  The two failpoints here are the
// fault-injection surface for durable-write I/O: CheckpointSlow stalls the
// write, CheckpointWriteError fails it.
func (st *Store) SaveCheckpoint(id string, cp *dynmon.Checkpoint) error {
	fault.Fire(fault.CheckpointSlow)
	if fault.Fire(fault.CheckpointWriteError) {
		return errors.New("fault: injected checkpoint write error")
	}
	b, err := cp.JSON()
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(st.jobDir(id), storeCheckpointFile), b)
}

// SaveResult persists a done job's terminal Result bytes.
func (st *Store) SaveResult(id string, resJSON []byte) error {
	return atomicWrite(filepath.Join(st.jobDir(id), storeResultFile), resJSON)
}

// SaveNextSeq records the id sequence high-water mark.
func (st *Store) SaveNextSeq(n int64) error {
	b, err := json.Marshal(storeManifest{Version: 1, NextSeq: n})
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(st.root, "manifest.json"), b)
}

// DeleteJob removes a job's directory (retention purge).
func (st *Store) DeleteJob(id string) error {
	return os.RemoveAll(st.jobDir(id))
}

// persistedJob is one job as read back from disk.  Err carries a per-file
// corruption: the job then surfaces as failed, but the server still boots —
// a damaged entry never takes recovery down.
type persistedJob struct {
	id         string
	meta       jobMeta
	spec       []byte
	checkpoint []byte // nil when none was taken
	result     []byte // nil unless terminal done
	err        error
}

// Load reads every persisted job plus the next id sequence number.  Per-job
// damage is reported on the entry, not as a load failure; only an unusable
// root errors.
func (st *Store) Load() ([]persistedJob, int64, error) {
	nextSeq := int64(0)
	if b, err := os.ReadFile(filepath.Join(st.root, "manifest.json")); err == nil {
		var m storeManifest
		// A corrupt manifest degrades to id recovery from directory names.
		if json.Unmarshal(b, &m) == nil && m.NextSeq > nextSeq {
			nextSeq = m.NextSeq
		}
	}
	entries, err := os.ReadDir(filepath.Join(st.root, "jobs"))
	if err != nil {
		return nil, 0, fmt.Errorf("dynserve: reading job store: %w", err)
	}
	var jobs []persistedJob
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		if seq := seqOfJobID(id); seq >= nextSeq {
			nextSeq = seq + 1
		}
		jobs = append(jobs, st.loadJob(id))
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	return jobs, nextSeq, nil
}

// loadJob reads one job directory, mapping damage to the entry's err.
func (st *Store) loadJob(id string) persistedJob {
	pj := persistedJob{id: id}
	dir := st.jobDir(id)

	metaBytes, err := os.ReadFile(filepath.Join(dir, storeMetaFile))
	if err != nil {
		pj.err = fmt.Errorf("job metadata unreadable: %w", err)
		return pj
	}
	if err := json.Unmarshal(metaBytes, &pj.meta); err != nil {
		pj.err = fmt.Errorf("job metadata corrupted: %w", err)
		return pj
	}
	pj.meta.ID = id // the directory name is authoritative

	pj.spec, err = os.ReadFile(filepath.Join(dir, storeSpecFile))
	if err != nil {
		pj.err = fmt.Errorf("job spec unreadable: %w", err)
		return pj
	}

	if b, err := os.ReadFile(filepath.Join(dir, storeCheckpointFile)); err == nil {
		pj.checkpoint = b
	} else if !errors.Is(err, os.ErrNotExist) {
		pj.err = fmt.Errorf("job checkpoint unreadable: %w", err)
		return pj
	}

	if pj.meta.State == jobDone {
		pj.result, err = os.ReadFile(filepath.Join(dir, storeResultFile))
		if err != nil {
			pj.err = fmt.Errorf("job result unreadable: %w", err)
		}
	}
	return pj
}

// seqOfJobID parses the numeric sequence out of a "j%06d" id, -1 otherwise.
func seqOfJobID(id string) int64 {
	if !strings.HasPrefix(id, "j") {
		return -1
	}
	var seq int64
	if _, err := fmt.Sscanf(id[1:], "%d", &seq); err != nil {
		return -1
	}
	return seq
}
