package dynserve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestJobTableLifecycleRaces hammers the jobTable's whole surface from
// concurrent goroutines — put/get/list/remove, purge via a tiny retention
// window, evictAll/evictOneIdle, and per-job subscribe/broadcast/closeSubs —
// under the race detector.  The assertions are deliberately light; the test
// exists to give -race interleavings to object to.
func TestJobTableLifecycleRaces(t *testing.T) {
	table := newJobTable(time.Millisecond)
	var purged atomic.Int64
	table.onPurge = func(ids []string) { purged.Add(int64(len(ids))) }

	const (
		writers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup

	// Writers: create jobs in every state, including terminal ones finished
	// in the past so the purge path constantly has work.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			states := []string{jobQueued, jobRunning, jobEvicted, jobDone, jobFailed}
			for i := 0; i < rounds; i++ {
				j := &job{
					id:       fmt.Sprintf("j%03d-%03d", w, i),
					state:    states[i%len(states)],
					detached: i%2 == 0,
					subs:     make(map[*jobSub]struct{}),
				}
				if jobTerminal(j.state) {
					j.finishedAt = time.Now().Add(-time.Hour)
				}
				table.put(j)
				if i%3 == 0 {
					table.remove(j.id)
				}
			}
		}(w)
	}

	// Readers and sweepers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				table.list()
				table.Len()
				table.get("j000-000")
				table.evictAll()
				table.evictOneIdle()
			}
		}()
	}

	// One shared job exercises subscribe/broadcast/unsubscribe vs closeSubs.
	shared := &job{id: "shared", state: jobRunning, subs: make(map[*jobSub]struct{})}
	table.put(shared)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if sub, _ := shared.subscribe(); sub != nil {
					select {
					case <-sub.ch:
					default:
					}
					shared.unsubscribe(sub)
				}
				shared.broadcast(streamEvent{kind: eventStep, round: i})
				if i%50 == 0 {
					shared.closeSubs()
				}
			}
		}()
	}

	wg.Wait()
	table.list() // final purge pass
	if purged.Load() == 0 {
		t.Fatal("retention purge never ran; the race test lost its purge arm")
	}
}

// TestJobTableSetSeqConcurrent pins the recovery sequence CAS: racing
// setSeq/nextSeq never hand out an id at or below the recovered high-water
// mark.
func TestJobTableSetSeqConcurrent(t *testing.T) {
	table := newJobTable(time.Minute)
	var wg sync.WaitGroup
	var minted sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			table.setSeq(int64(100 + g))
			for i := 0; i < 100; i++ {
				seq := table.nextSeq()
				if _, dup := minted.LoadOrStore(seq, true); dup {
					t.Errorf("sequence %d minted twice", seq)
				}
			}
		}(g)
	}
	wg.Wait()
	if seq := table.nextSeq(); seq < 108 {
		t.Fatalf("sequence %d did not clear the highest setSeq watermark", seq)
	}
}
