package dynserve

import (
	"bufio"
	"bytes"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/dynserve/fault"
)

func armFailpoint(t *testing.T, name, spec string) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(name, spec); err != nil {
		t.Fatal(err)
	}
}

func waitTerminal(t *testing.T, srv *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := jobStatus(t, srv, id)
		if jobTerminal(cur.State) {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled: %+v", cur)
		}
		runtime.Gosched()
	}
}

// TestFaultWorkerPanicFailsOnlyThatJob pins fault isolation: an injected
// panic inside the run loop settles that one job as failed, returns the
// worker slot, bumps the recovery counter — and the process keeps serving.
func TestFaultWorkerPanicFailsOnlyThatJob(t *testing.T) {
	armFailpoint(t, fault.WorkerPanic, "once")
	srv, ts := newTestServer(t, Config{Workers: 1})

	st := submitJob(t, ts.URL, longSpec(t))
	cur := waitTerminal(t, srv, st.ID)
	if cur.State != jobFailed {
		t.Fatalf("job state %q, want failed", cur.State)
	}
	if !strings.Contains(cur.Error, "panicked") {
		t.Fatalf("job error %q does not name the panic", cur.Error)
	}
	if n := srv.metrics.PanicsRecovered.Load(); n != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", n)
	}

	// The slot came back: with Workers=1, a follow-up inline run can only
	// complete if the panicked segment released its worker.
	resp := postRun(t, ts.URL, goldenSpec(t, "mesh-9x9-minimum.json"), "application/json")
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("run after worker panic: status %d, want 200", resp.StatusCode)
	}
}

// TestFaultCheckpointWriteErrorFailsJob pins the durable-write failure path:
// a checkpoint that cannot be persisted fails the job through the engine's
// sink-error propagation, with the cadence round named in the error.
func TestFaultCheckpointWriteErrorFailsJob(t *testing.T) {
	armFailpoint(t, fault.CheckpointWriteError, "once")
	srv, ts := newTestServer(t, Config{Workers: 1, CheckpointEvery: 5, DataDir: t.TempDir()})
	waitReady(t, srv)

	st := submitJob(t, ts.URL, longSpec(t))
	cur := waitTerminal(t, srv, st.ID)
	if cur.State != jobFailed {
		t.Fatalf("job state %q, want failed", cur.State)
	}
	if !strings.Contains(cur.Error, "checkpoint cadence at round") {
		t.Fatalf("job error %q does not carry the cadence context", cur.Error)
	}
	if n := srv.metrics.CheckpointWriteErrors.Load(); n != 1 {
		t.Fatalf("CheckpointWriteErrors = %d, want 1", n)
	}
	// One failed write, then the store works again (the failpoint was
	// once-only): a fresh job completes with durable checkpoints.
	resp := postRun(t, ts.URL, goldenSpec(t, "mesh-9x9-minimum.json"), "application/json")
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("run after checkpoint write error: status %d", resp.StatusCode)
	}
}

// TestFaultHandlerPanic pins the middleware: an injected handler panic
// answers 500 on that request, and the very next request succeeds.
func TestFaultHandlerPanic(t *testing.T) {
	armFailpoint(t, fault.HandlerPanic, "once")
	srv, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked request status %d, want 500", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("internal panic")) {
		t.Fatalf("500 body %q does not say internal panic", body)
	}
	if n := srv.metrics.PanicsRecovered.Load(); n != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", n)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d, want 200", resp.StatusCode)
	}
}

// TestFaultStreamDropAbandonsInlineRun pins inline-stream semantics: a
// dropped connection mid-stream stops the run (no detached owner exists to
// keep it alive), so the response ends without a terminal result event.
func TestFaultStreamDropAbandonsInlineRun(t *testing.T) {
	armFailpoint(t, fault.StreamDrop, "after:3")
	srv, ts := newTestServer(t, Config{Workers: 1})

	resp := postRun(t, ts.URL, goldenSpec(t, "ws-300-random.json"), "")
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var lines int
	for sc.Scan() {
		lines++
		if bytes.Contains(sc.Bytes(), []byte(`"event":"result"`)) {
			t.Fatal("dropped stream still delivered a terminal result")
		}
	}
	if lines == 0 {
		t.Fatal("stream dropped before any event; want a truncation mid-stream")
	}
	if n := srv.metrics.RunsFailed.Load(); n != 1 {
		t.Fatalf("RunsFailed = %d, want 1 (abandoned inline run)", n)
	}
}

// TestFaultStreamDropDetachedJobSurvives is the counterpart: a detached
// job's watcher losing its connection is the watcher's problem — the job
// runs on to its terminal Result.
func TestFaultStreamDropDetachedJobSurvives(t *testing.T) {
	armFailpoint(t, fault.StreamDrop, "after:2")
	spec := longSpec(t)
	want := offlineResult(t, spec)
	srv, ts := newTestServer(t, Config{Workers: 1})

	st := submitJob(t, ts.URL, spec)
	// Attach a streaming watcher; the failpoint severs it mid-stream.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp) // drain the truncated stream to its early end

	cur := waitTerminal(t, srv, st.ID)
	if cur.State != jobDone {
		t.Fatalf("job state %q after watcher drop, want done (error: %s)", cur.State, cur.Error)
	}
	fault.Reset() // disarm before fetching the result over a fresh stream
	code, got := attachBuffered(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result fetch status %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("job result after dropped watcher differs from offline run")
	}
}
