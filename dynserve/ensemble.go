package dynserve

import (
	"encoding/json"
	"net/http"

	"repro/dynmon"
)

// ensembleCacheKey namespaces ensemble digests in the shared result cache:
// ensemble reports and single-run results have different shapes, so they
// must never answer for one another even if their digests ever collided.
func ensembleCacheKey(digest string) string { return "ensemble:" + digest }

// handleEnsemble is POST /v1/ensembles: submit a dynmon.EnsembleSpec (one
// system, a base initial family and run spec, N replicas per point of an
// optional parameter sweep) and answer with the aggregated
// dynmon.EnsembleReport — takeover probability with 95% Wilson intervals
// and rounds-to-takeover quantiles per sweep point.
//
// Reports are cached by ensemble spec digest.  The report is a pure
// function of the spec — replica seeds are derived, counter-based, and the
// aggregation is completion-order independent — so a cached answer is
// byte-identical to a fresh run and the endpoint is safe to retry.  A
// cached answer costs no worker slot; a miss occupies one admission slot
// (like /v1/batch: the ensemble, not the replica, is the admission unit)
// and fans its replicas over a session bounded by the server's worker
// budget, riding the bit-sliced batch tier where the points are
// deterministic and eligible.
func (s *Server) handleEnsemble(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	es, err := dynmon.ParseEnsembleSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ens, err := dynmon.NewEnsemble(es, s.cfg.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	digest := ens.Digest()

	type ensembleResponse struct {
		Digest string          `json:"digest"`
		Cached bool            `json:"cached"`
		Report json.RawMessage `json:"report"`
	}
	if v, ok := s.results.Get(ensembleCacheKey(digest)); ok {
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, ensembleResponse{Digest: digest, Cached: true, Report: v.(*cachedResult).json})
		return
	}
	s.metrics.CacheMisses.Add(1)

	release, err := s.acquire(r.Context())
	if err != nil {
		s.admissionError(w, err)
		return
	}
	defer release()
	ctx, cancel := s.runContext(r.Context())
	defer cancel()

	s.metrics.RunsStarted.Add(1)
	report, err := ens.Run(ctx)
	if err != nil {
		s.metrics.RunsFailed.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.RunsCompleted.Add(1)
	b, err := json.Marshal(report)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.results.Put(ensembleCacheKey(digest), &cachedResult{json: b})
	writeJSON(w, http.StatusOK, ensembleResponse{Digest: digest, Report: b})
}
