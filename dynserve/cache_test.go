package dynserve

import (
	"fmt"
	"testing"
)

// TestLRUCacheBoundAndRecency pins the cache discipline: the bound is a
// hard cap, eviction takes the least-recently-used entry, and Get refreshes
// recency.
func TestLRUCacheBoundAndRecency(t *testing.T) {
	var evictions int
	c := newLRUCache(3, func() { evictions++ })
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}

	// Touch k0 so k1 becomes the LRU entry, then overflow.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", 3)
	if evictions != 1 {
		t.Fatalf("evictions %d, want 1", evictions)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived, but it was the least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want it retained", k)
		}
	}

	// Refreshing an existing key neither grows nor evicts.
	c.Put("k2", 22)
	if c.Len() != 3 || evictions != 1 {
		t.Fatalf("after refresh: len %d evictions %d, want 3/1", c.Len(), evictions)
	}
	if v, _ := c.Get("k2"); v.(int) != 22 {
		t.Fatalf("k2 = %v, want refreshed 22", v)
	}
}

// TestLRUCacheMinimumBound pins that a degenerate bound still caches one
// entry rather than nothing (or panicking).
func TestLRUCacheMinimumBound(t *testing.T) {
	c := newLRUCache(0, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("newest entry missing")
	}
}
