package dynserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/dynmon"
)

const testEnsembleSpec = `{
  "system": {
    "substrate": {"topology": {"name": "toroidal-mesh", "rows": 10, "cols": 10}},
    "colors": 2,
    "rule": "smp"
  },
  "initial": {"config": "bernoulli"},
  "run": {"max_rounds": 40, "target": 1, "noise": {"eps": 0.02}},
  "replicas": 8,
  "seed": 7,
  "sweep": {"axis": "density", "values": [0.3, 0.7]}
}`

func postEnsemble(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/ensembles", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

type ensembleResponse struct {
	Digest string          `json:"digest"`
	Cached bool            `json:"cached"`
	Report json.RawMessage `json:"report"`
}

func decodeEnsemble(t *testing.T, resp *http.Response) ensembleResponse {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ensemble status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var er ensembleResponse
	if err := json.Unmarshal(readAll(t, resp), &er); err != nil {
		t.Fatal(err)
	}
	return er
}

// TestEnsembleEndpoint pins the /v1/ensembles contract: the served report
// is byte-identical to an offline dynmon.Ensemble run of the same spec, is
// keyed by the spec digest, and a resubmission answers the same bytes from
// cache without occupying a worker slot.
func TestEnsembleEndpoint(t *testing.T) {
	es, err := dynmon.ParseEnsembleSpec([]byte(testEnsembleSpec))
	if err != nil {
		t.Fatal(err)
	}
	ens, err := dynmon.NewEnsemble(es, 2)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := ens.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	offlineJSON, err := json.Marshal(offline)
	if err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{Workers: 2})
	cold := decodeEnsemble(t, postEnsemble(t, ts.URL, []byte(testEnsembleSpec)))
	if cold.Cached {
		t.Fatal("cold submission claims a cache hit")
	}
	if cold.Digest != ens.Digest() {
		t.Fatalf("served digest %q, offline digest %q", cold.Digest, ens.Digest())
	}
	if !bytes.Equal(cold.Report, offlineJSON) {
		t.Fatalf("served report differs from offline run:\n got %s\nwant %s", cold.Report, offlineJSON)
	}

	warm := decodeEnsemble(t, postEnsemble(t, ts.URL, []byte(testEnsembleSpec)))
	if !warm.Cached {
		t.Fatal("resubmission missed the cache")
	}
	if !bytes.Equal(warm.Report, cold.Report) {
		t.Fatal("cached report drifted from the cold one")
	}
	if h, m := srv.metrics.CacheHits.Load(), srv.metrics.CacheMisses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	if rc := srv.metrics.RunsCompleted.Load(); rc != 1 {
		t.Fatalf("runs completed = %d, want 1 (the ensemble is the admission unit)", rc)
	}
}

// TestEnsembleEndpointErrors pins the failure modes: malformed or invalid
// specs answer 400 before admission; a spec that validates but cannot build
// answers 422.
func TestEnsembleEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, bad := range []string{
		`{not json`,
		`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"initial":{"config":"bernoulli"},"replicas":0}`,
		`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"initial":{"config":"bernoulli"},"replicas":2,"sweep":{"axis":"voltage","values":[1]}}`,
		testEnsembleSpec + `trailing`,
	} {
		resp := postEnsemble(t, ts.URL, []byte(bad))
		if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %.60q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	unbuildable := `{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"initial":{"config":"no-such-family"},"replicas":2}`
	resp := postEnsemble(t, ts.URL, []byte(unbuildable))
	if readAll(t, resp); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unbuildable ensemble: status %d, want 422", resp.StatusCode)
	}
}
