package dynserve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dynmon"
)

// TestAtomicWriteReplacesWholeFile pins the crash-consistency primitive: a
// replace leaves exactly the new bytes, and no temp debris survives.
func TestAtomicWriteReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.json")
	if err := atomicWrite(path, []byte("a long first version of the file")); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after replace file holds %q, want %q (no stale tail)", got, "v2")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", ent.Name())
		}
	}
}

// TestStoreRoundTrip pins the persistence schema: a saved spec, meta,
// checkpoint and result load back intact, and the manifest's id sequence is
// honored.
func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2,"rule":"smp"},"initial":{"config":"minimum"},"run":{"target":1}}`)
	fs, err := dynmon.ParseFileSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("j000007", fs); err != nil {
		t.Fatal(err)
	}
	meta := jobMeta{ID: "j000007", Digest: "abc", State: jobDone, Detached: true, Round: 8, CheckpointRound: 4, FinishedAtNanos: 12345}
	if err := st.SaveMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("j000007", []byte(`{"rounds":8}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveNextSeq(11); err != nil {
		t.Fatal(err)
	}

	jobs, nextSeq, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if nextSeq != 11 {
		t.Fatalf("nextSeq = %d, want 11 (manifest high-water mark)", nextSeq)
	}
	if len(jobs) != 1 {
		t.Fatalf("loaded %d jobs, want 1", len(jobs))
	}
	pj := jobs[0]
	if pj.err != nil {
		t.Fatalf("round trip surfaced damage: %v", pj.err)
	}
	if pj.meta != meta {
		t.Fatalf("meta round trip: got %+v, want %+v", pj.meta, meta)
	}
	if !bytes.Equal(pj.result, []byte(`{"rounds":8}`)) {
		t.Fatalf("result round trip: %s", pj.result)
	}
	if pj.checkpoint != nil {
		t.Fatal("phantom checkpoint loaded for a job that never saved one")
	}
	if _, err := dynmon.ParseFileSpec(pj.spec); err != nil {
		t.Fatalf("persisted spec does not re-parse: %v", err)
	}
}

// TestStoreLoadSequenceFromDirectories pins the manifest fallback: with no
// (or a stale) manifest the sequence recovers from the job directory names,
// so ids are never reused even if the manifest write was lost.
func TestStoreLoadSequenceFromDirectories(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("garbage{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveMeta(jobMeta{ID: "j000042", State: jobFailed, Error: "x"}); err != nil {
		t.Fatal(err)
	}
	// A spec must exist for the entry to load clean; failed jobs keep theirs.
	fs, err := dynmon.ParseFileSpec([]byte(`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2,"rule":"smp"},"initial":{"config":"minimum"},"run":{"target":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("j000042", fs); err != nil {
		t.Fatal(err)
	}
	_, nextSeq, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if nextSeq != 43 {
		t.Fatalf("nextSeq = %d, want 43 (max directory id + 1)", nextSeq)
	}
}

// TestStoreLoadCorruption pins damage tolerance: truncated or garbage files
// surface as the entry's err — never as a Load failure that would stop the
// server from booting.
func TestStoreLoadCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, jobDir string)
		wantErr string
	}{
		{
			name: "garbage-metadata",
			corrupt: func(t *testing.T, jobDir string) {
				if err := os.WriteFile(filepath.Join(jobDir, storeMetaFile), []byte("{truncated"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "metadata corrupted",
		},
		{
			name: "missing-spec",
			corrupt: func(t *testing.T, jobDir string) {
				if err := os.Remove(filepath.Join(jobDir, storeSpecFile)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "spec unreadable",
		},
		{
			name: "missing-result",
			corrupt: func(t *testing.T, jobDir string) {
				if err := os.Remove(filepath.Join(jobDir, storeResultFile)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "result unreadable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			fs, err := dynmon.ParseFileSpec([]byte(`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2,"rule":"smp"},"initial":{"config":"minimum"},"run":{"target":1}}`))
			if err != nil {
				t.Fatal(err)
			}
			if err := st.SaveSpec("j000001", fs); err != nil {
				t.Fatal(err)
			}
			if err := st.SaveMeta(jobMeta{ID: "j000001", State: jobDone}); err != nil {
				t.Fatal(err)
			}
			if err := st.SaveResult("j000001", []byte(`{"rounds":1}`)); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, st.jobDir("j000001"))

			jobs, _, err := st.Load()
			if err != nil {
				t.Fatalf("Load failed outright on per-job damage: %v", err)
			}
			if len(jobs) != 1 {
				t.Fatalf("loaded %d jobs, want the damaged one", len(jobs))
			}
			if jobs[0].err == nil || !strings.Contains(jobs[0].err.Error(), tc.wantErr) {
				t.Fatalf("damage err = %v, want substring %q", jobs[0].err, tc.wantErr)
			}
		})
	}
}
