// Package fault is a tiny failpoint registry for exercising dynserve's
// failure paths: worker panics, checkpoint-write I/O errors, slow durable
// writes, dropped stream connections.  It exists for tests and chaos drills
// only — nothing arms a failpoint in production paths; cmd/dynmond arms them
// from the -failpoints flag / DYNMOND_FAILPOINTS env var and logs loudly
// when it does.
//
// A failpoint is a named site in the code that calls Fire(name).  Disarmed
// (the default), Fire is a single atomic load returning false.  Armed, the
// point counts evaluations and decides per its mode spec:
//
//	name=always      fire on every evaluation
//	name=once        fire on the 1st evaluation only
//	name=once:N      fire on the Nth evaluation only
//	name=after:N     fire on every evaluation after the Nth
//	name=every:N     fire on every Nth evaluation
//	name=sleep:DUR   sleep DUR on every evaluation (the delay is the fault;
//	                 Fire still returns false)
//
// Counting is deterministic: the Nth evaluation of a point is the Nth call
// to Fire for that name, so tests can target e.g. exactly the third
// checkpoint write.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Failpoint names used by dynserve.  Arm accepts any name — sites and specs
// are matched by string — but these are the sites that exist.
const (
	// WorkerPanic panics the job runner loop at a round boundary: the
	// injected panic must fail only that job, never the process.
	WorkerPanic = "worker-panic"
	// HandlerPanic panics inside the HTTP handler chain before routing.
	HandlerPanic = "handler-panic"
	// CheckpointWriteError fails a durable checkpoint write with an I/O
	// error: the affected job must fail cleanly, the server stays up.
	CheckpointWriteError = "checkpoint-write-error"
	// CheckpointSlow stalls durable checkpoint writes (mode sleep:DUR) —
	// both a slow-disk simulation and the time dilation the CI chaos step
	// uses to make kill -9 land mid-run deterministically.
	CheckpointSlow = "checkpoint-slow"
	// StreamDrop fails the next stream event write, as a dropped client
	// connection would: inline runs stop, detached jobs must keep running.
	StreamDrop = "stream-drop"
	// RecoverySlow stalls startup job recovery (mode sleep:DUR), holding
	// /readyz at 503 long enough for tests to observe it.
	RecoverySlow = "recovery-slow"
)

type mode int

const (
	modeAlways mode = iota
	modeOnce        // fire on evaluation n exactly
	modeAfter       // fire on every evaluation > n
	modeEvery       // fire on every n-th evaluation
	modeSleep       // sleep d on every evaluation, never "fire"
)

type point struct {
	mode  mode
	n     int64
	d     time.Duration
	evals atomic.Int64
	fired atomic.Int64
}

var (
	armed      atomic.Int32 // number of armed points: the disarmed fast path
	mu         sync.Mutex
	points     = map[string]*point{}
	firedTotal atomic.Int64
)

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() > 0 }

// Arm registers (or replaces) one failpoint with a mode spec like "always",
// "once", "once:3", "after:5", "every:2" or "sleep:250ms".
func Arm(name, spec string) error {
	p, err := parseMode(spec)
	if err != nil {
		return fmt.Errorf("fault: %s=%s: %w", name, spec, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = p
	return nil
}

// ArmAll arms a comma-separated list of name=spec pairs, the
// DYNMOND_FAILPOINTS / -failpoints grammar.
func ArmAll(specs string) error {
	for _, kv := range strings.Split(specs, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, spec, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("fault: %q is not name=spec", kv)
		}
		if err := Arm(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Disarm removes one failpoint.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; exists {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint and zeroes the fired counter.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	firedTotal.Store(0)
}

// Active returns the armed failpoint names, sorted.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Fire evaluates one failpoint site.  It returns true when the site should
// inject its fault (panic, error, drop — the site decides the kind).  For
// sleep-mode points it performs the delay itself and returns false.
func Fire(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return false
	}
	n := p.evals.Add(1)
	switch p.mode {
	case modeAlways:
	case modeOnce:
		if n != p.n {
			return false
		}
	case modeAfter:
		if n <= p.n {
			return false
		}
	case modeEvery:
		if n%p.n != 0 {
			return false
		}
	case modeSleep:
		p.fired.Add(1)
		firedTotal.Add(1)
		time.Sleep(p.d)
		return false
	}
	p.fired.Add(1)
	firedTotal.Add(1)
	return true
}

// FiredTotal returns how many times any failpoint fired since the last
// Reset (sleep delays included) — the /metrics faults_injected counter.
func FiredTotal() int64 { return firedTotal.Load() }

// Fired returns how many times one failpoint fired.
func Fired(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

func parseMode(spec string) (*point, error) {
	kind, arg, hasArg := strings.Cut(spec, ":")
	p := &point{}
	switch kind {
	case "always":
		p.mode = modeAlways
	case "once":
		p.mode, p.n = modeOnce, 1
	case "after":
		p.mode = modeAfter
	case "every":
		p.mode, p.n = modeEvery, 1
	case "sleep":
		p.mode = modeSleep
		if !hasArg {
			return nil, fmt.Errorf("sleep needs a duration")
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad duration %q", arg)
		}
		p.d = d
		return p, nil
	default:
		return nil, fmt.Errorf("unknown mode %q", kind)
	}
	if hasArg {
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", arg)
		}
		p.n = n
	} else if p.mode == modeAfter {
		return nil, fmt.Errorf("after needs a count")
	}
	if p.mode == modeEvery && p.n < 1 {
		return nil, fmt.Errorf("every needs a count >= 1")
	}
	return p, nil
}
