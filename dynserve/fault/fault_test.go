package fault

import (
	"sync"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	Reset()
	t.Cleanup(Reset)
}

func TestDisarmedFastPath(t *testing.T) {
	reset(t)
	if Enabled() {
		t.Fatal("no failpoint armed, Enabled() = true")
	}
	if Fire("anything") {
		t.Fatal("disarmed Fire returned true")
	}
	if FiredTotal() != 0 {
		t.Fatalf("FiredTotal = %d, want 0", FiredTotal())
	}
}

// TestModes pins the deterministic counting semantics of every mode: tests
// rely on "the Nth evaluation" meaning exactly the Nth Fire call.
func TestModes(t *testing.T) {
	cases := []struct {
		spec string
		want []bool // Fire outcomes for evaluations 1..len
	}{
		{"always", []bool{true, true, true, true}},
		{"once", []bool{true, false, false, false}},
		{"once:3", []bool{false, false, true, false}},
		{"after:2", []bool{false, false, true, true}},
		{"every:2", []bool{false, true, false, true}},
	}
	for _, tc := range cases {
		reset(t)
		if err := Arm("p", tc.spec); err != nil {
			t.Fatalf("Arm(%q): %v", tc.spec, err)
		}
		for i, want := range tc.want {
			if got := Fire("p"); got != want {
				t.Errorf("spec %q evaluation %d: Fire = %v, want %v", tc.spec, i+1, got, want)
			}
		}
	}
}

func TestSleepModeDelaysWithoutFiring(t *testing.T) {
	reset(t)
	if err := Arm("slow", "sleep:30ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if Fire("slow") {
		t.Fatal("sleep-mode point returned true")
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("sleep-mode point only delayed %v", d)
	}
	if Fired("slow") != 1 || FiredTotal() != 1 {
		t.Fatalf("sleep fire counts: point=%d total=%d, want 1/1", Fired("slow"), FiredTotal())
	}
}

func TestArmAllAndActive(t *testing.T) {
	reset(t)
	if err := ArmAll(" a=once:2 , b=sleep:1ms ,"); err != nil {
		t.Fatal(err)
	}
	got := Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Active = %v", got)
	}
	Disarm("a")
	if got := Active(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("after Disarm Active = %v", got)
	}
	Disarm("b")
	if Enabled() {
		t.Fatal("still enabled after disarming everything")
	}
}

func TestBadSpecs(t *testing.T) {
	reset(t)
	for _, spec := range []string{"", "bogus", "once:0", "after", "every:-1", "sleep", "sleep:xyz", "sleep:-1s"} {
		if err := Arm("p", spec); err == nil {
			t.Errorf("Arm(%q) accepted a bad spec", spec)
		}
	}
	if err := ArmAll("no-equals-sign"); err == nil {
		t.Error("ArmAll accepted a pair without =")
	}
}

// TestConcurrentFire exercises the registry under the race detector.
func TestConcurrentFire(t *testing.T) {
	reset(t)
	if err := Arm("p", "every:7"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 700; i++ {
				Fire("p")
			}
		}()
	}
	wg.Wait()
	if got := Fired("p"); got != 800 {
		t.Fatalf("Fired = %d, want 800 (5600 evaluations / every:7)", got)
	}
}
