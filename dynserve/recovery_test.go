package dynserve

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/dynmon"
	"repro/dynserve/fault"
)

// fabricateCrash writes the on-disk state a kill -9 would leave behind: a
// job persisted as running with a checkpoint some rounds in.  Tests cannot
// kill goroutines, but the store's crash contract is purely about bytes on
// disk — atomic writes guarantee a real crash leaves exactly a state like
// this (a complete older version of every file, nothing half-written).
func fabricateCrash(t *testing.T, dir string, spec []byte, cpRound int) (id, digest string) {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dynmon.ParseFileSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if digest, err = fs.Digest(); err != nil {
		t.Fatal(err)
	}
	id = "j000001"
	if err := st.SaveSpec(id, fs); err != nil {
		t.Fatal(err)
	}
	sys, cons, _, err := fs.Build()
	if err != nil {
		t.Fatal(err)
	}
	var saved bool
	for step, serr := range sys.Steps(context.Background(), cons.Coloring, dynmon.WithRunSpec(fs.Run)) {
		if serr != nil {
			t.Fatal(serr)
		}
		if step.Round() == cpRound {
			cp, cerr := step.Checkpoint()
			if cerr != nil {
				t.Fatal(cerr)
			}
			if err := st.SaveCheckpoint(id, cp); err != nil {
				t.Fatal(err)
			}
			saved = true
			break
		}
	}
	if !saved {
		t.Fatalf("run ended before round %d, cannot fabricate a mid-run crash", cpRound)
	}
	meta := jobMeta{ID: id, Digest: digest, State: jobRunning, Detached: true, Round: cpRound, CheckpointRound: cpRound}
	if err := st.SaveMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveNextSeq(2); err != nil {
		t.Fatal(err)
	}
	return id, digest
}

// attachBuffered re-attaches to a job in buffered mode and returns the
// terminal Result bytes.
func attachBuffered(t *testing.T, url, id string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, bytes.TrimSuffix(readAll(t, resp), []byte("\n"))
}

func waitReady(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !srv.ready.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		runtime.Gosched()
	}
}

// TestRecoveryRestartsInterruptedJobBitIdentical is the headline crash pin:
// a server booted on a directory holding a job that was mid-run when the
// process died restarts it from its checkpoint, and the recovered terminal
// Result is byte-identical to an uninterrupted offline run — determinism
// makes crash recovery exact, not merely best-effort.
func TestRecoveryRestartsInterruptedJobBitIdentical(t *testing.T) {
	spec := longSpec(t)
	want := offlineResult(t, spec)
	dir := t.TempDir()
	id, _ := fabricateCrash(t, dir, spec, 10)

	srv, ts := newTestServer(t, Config{Workers: 1, CheckpointEvery: 10, DataDir: dir})
	if n := srv.metrics.JobsRecovered.Load(); n != 1 {
		t.Fatalf("JobsRecovered = %d, want 1", n)
	}
	// The id resolves immediately, before recovery finishes.
	if _, ok := srv.jobs.get(id); !ok {
		t.Fatal("recovered job not registered at boot")
	}

	code, got := attachBuffered(t, ts.URL, id)
	if code != http.StatusOK {
		t.Fatalf("attach status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered job's Result differs from an uninterrupted offline run")
	}
	if n := srv.metrics.JobsResumed.Load(); n != 1 {
		t.Fatalf("JobsResumed = %d, want 1 (restart must resume the checkpoint, not rerun)", n)
	}

	// Second restart on the same directory: the job is terminal now, its
	// stored Result serves without any execution and still matches.
	srv2, ts2 := newTestServer(t, Config{Workers: 1, DataDir: dir})
	waitReady(t, srv2)
	code, got = attachBuffered(t, ts2.URL, id)
	if code != http.StatusOK {
		t.Fatalf("post-completion attach status %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stored Result served after restart differs from the offline run")
	}
	if n := srv2.metrics.RunsStarted.Load(); n != 0 {
		t.Fatalf("restart re-executed a done job (%d runs started)", n)
	}
}

// TestRecoveryAfterDrainRoundTrip pins the graceful path: drain parks jobs
// on durable checkpoints, and a fresh server on the same directory resumes
// them to the uninterrupted run's exact bytes.
func TestRecoveryAfterDrainRoundTrip(t *testing.T) {
	spec := longSpec(t)
	want := offlineResult(t, spec)
	dir := t.TempDir()

	srv, ts := newTestServer(t, Config{Workers: 1, CheckpointEvery: 5, DataDir: dir})
	waitReady(t, srv)
	st := submitJob(t, ts.URL, spec)
	deadline := time.Now().Add(30 * time.Second)
	for jobStatus(t, srv, st.ID).Round < 5 {
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	srv2, ts2 := newTestServer(t, Config{Workers: 1, CheckpointEvery: 5, DataDir: dir})
	waitReady(t, srv2)
	cur := jobStatus(t, srv2, st.ID)
	if cur.State != jobEvicted {
		t.Fatalf("recovered job state %q, want evicted (parked by drain)", cur.State)
	}
	if cur.CheckpointRound < 0 {
		t.Fatal("recovered job lost its checkpoint")
	}
	code, got := attachBuffered(t, ts2.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("attach status %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("drain/restart/resume Result differs from an uninterrupted offline run")
	}
}

// TestRecoveryCorruptCheckpoint pins damage tolerance end to end: a
// truncated checkpoint fails that one job — its status carries the reason —
// while the server boots and serves everything else.
func TestRecoveryCorruptCheckpoint(t *testing.T) {
	spec := longSpec(t)
	dir := t.TempDir()
	id, _ := fabricateCrash(t, dir, spec, 10)
	cpPath := filepath.Join(dir, "jobs", id, storeCheckpointFile)
	b, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpPath, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})
	waitReady(t, srv)
	cur := jobStatus(t, srv, id)
	if cur.State != jobFailed {
		t.Fatalf("job with corrupt checkpoint recovered as %q, want failed", cur.State)
	}
	if cur.Error == "" {
		t.Fatal("failed recovery carries no error message")
	}
	if n := srv.metrics.JobsRecoveryFailed.Load(); n != 1 {
		t.Fatalf("JobsRecoveryFailed = %d, want 1", n)
	}
	// The server is fully functional: an unrelated inline run completes.
	resp := postRun(t, ts.URL, goldenSpec(t, "mesh-9x9-minimum.json"), "application/json")
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("inline run after damaged recovery: status %d", resp.StatusCode)
	}
}

// TestReadyzDuringRecovery pins the probe split: while startup recovery is
// still running /readyz answers 503 (don't route traffic yet) but /healthz
// answers 200 (don't kill the pod for recovering).
func TestReadyzDuringRecovery(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.RecoverySlow, "sleep:300ms"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fabricateCrash(t, dir, longSpec(t), 10)
	srv, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during recovery %d, want 200", code)
	}
	waitReady(t, srv)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery %d, want 200", code)
	}
}
