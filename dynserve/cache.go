package dynserve

import (
	"container/list"
	"sync"
)

// lruCache is a small bounded LRU keyed by digest strings.  It backs both
// the result cache (digest -> terminal result bytes) and the system cache
// (digest -> *dynmon.System).  Correctness needs no invalidation: keys are
// content addresses of canonical specs and runs are deterministic, so an
// entry can never go stale — the bound exists purely to cap memory.
type lruCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	byKey   map[string]*list.Element
	onEvict func()
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(max int, onEvict func()) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element), onEvict: onEvict}
}

// Get returns the value for key, refreshing its recency.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting the least-recently-used entry when
// the bound is exceeded.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// Len returns the number of live entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
