package dynserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/dynmon"
)

const testBatchSpec = `{
  "system": {
    "substrate": {"topology": {"name": "toroidal-mesh", "rows": 12, "cols": 12}},
    "colors": 2,
    "rule": "smp"
  },
  "run": {"target": 1, "stop_when_monochromatic": true, "detect_cycles": true},
  "items": [
    {"config": "random", "seed": 1},
    {"config": "random", "seed": 2},
    {"config": "random", "seed": 3}
  ]
}`

func postBatch(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

type batchResponse struct {
	Results []batchItem `json:"results"`
}

func decodeBatch(t *testing.T, resp *http.Response) batchResponse {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var br batchResponse
	if err := json.Unmarshal(readAll(t, resp), &br); err != nil {
		t.Fatal(err)
	}
	return br
}

// TestBatchEndpoint pins the /v1/batch contract: per-item Results
// byte-identical to offline single runs, per-item digests shared with the
// /v1/runs cache keyspace (a single-run submission pre-warms a batch item
// and a batch miss pre-warms a later single run), and a fully cached
// resubmission answering entirely from cache.
func TestBatchEndpoint(t *testing.T) {
	bs, err := dynmon.ParseBatchSpec([]byte(testBatchSpec))
	if err != nil {
		t.Fatal(err)
	}
	offline := make([][]byte, len(bs.Items))
	for i := range bs.Items {
		itemSpec, jerr := bs.Item(i).JSON()
		if jerr != nil {
			t.Fatal(jerr)
		}
		offline[i] = offlineResult(t, itemSpec)
	}

	srv, ts := newTestServer(t, Config{Workers: 2})

	// Pre-warm item 0 through the single-run endpoint.
	item0, err := bs.Item(0).JSON()
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, postRun(t, ts.URL, item0, "application/json"))

	br := decodeBatch(t, postBatch(t, ts.URL, []byte(testBatchSpec)))
	if len(br.Results) != 3 {
		t.Fatalf("got %d results", len(br.Results))
	}
	for i, item := range br.Results {
		wantDigest, derr := bs.ItemDigest(i)
		if derr != nil {
			t.Fatal(derr)
		}
		if item.Digest != wantDigest {
			t.Errorf("item %d digest %q, want %q", i, item.Digest, wantDigest)
		}
		if wantCached := i == 0; item.Cached != wantCached {
			t.Errorf("item %d cached=%v, want %v", i, item.Cached, wantCached)
		}
		if !bytes.Equal(item.Result, offline[i]) {
			t.Errorf("item %d result differs from offline run:\n got %s\nwant %s", i, item.Result, offline[i])
		}
	}
	// 1 single-run miss + 1 batch hit + 2 batch misses so far.
	if h, m := srv.metrics.CacheHits.Load(), srv.metrics.CacheMisses.Load(); h != 1 || m != 3 {
		t.Fatalf("after first batch: hits=%d misses=%d, want 1/3", h, m)
	}

	// A batch miss warms the cache for single-run submissions.
	item1, err := bs.Item(1).JSON()
	if err != nil {
		t.Fatal(err)
	}
	resp := postRun(t, ts.URL, item1, "application/json")
	if resp.Header.Get("X-Dynmond-Cache") != "hit" {
		t.Fatal("single-run submission of a batch-settled item missed the cache")
	}
	if got := readAll(t, resp); !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), offline[1]) {
		t.Fatal("cached single-run result differs from offline run")
	}

	// Resubmitting the whole batch answers from cache without a worker slot.
	br = decodeBatch(t, postBatch(t, ts.URL, []byte(testBatchSpec)))
	for i, item := range br.Results {
		if !item.Cached {
			t.Errorf("resubmitted item %d not served from cache", i)
		}
		if !bytes.Equal(item.Result, offline[i]) {
			t.Errorf("resubmitted item %d result drifted", i)
		}
	}
	// The server ran each distinct item exactly once across all endpoints.
	if rc := srv.metrics.RunsCompleted.Load(); rc != 3 {
		t.Fatalf("runs completed = %d, want 3", rc)
	}
}

// TestBatchEndpointErrors pins the failure modes: malformed and invalid
// specs answer 400 before admission, a batch whose items cannot build on
// its system answers 422.
func TestBatchEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, bad := range []string{
		`{not json`,
		`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"items":[{"config":"random"}],"bogus":1}`,
		`{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"items":[]}`,
	} {
		resp := postBatch(t, ts.URL, []byte(bad))
		if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	unbuildable := `{"system":{"substrate":{"topology":{"name":"toroidal-mesh","rows":9,"cols":9}},"colors":2},"items":[{"config":"no-such-family"}]}`
	resp := postBatch(t, ts.URL, []byte(unbuildable))
	if readAll(t, resp); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unbuildable batch: status %d, want 422", resp.StatusCode)
	}
}
