package dynserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strings"
	"time"

	"repro/dynmon"
)

// stepSeq is the public step-stream shape shared with dynmon.
type stepSeq = iter.Seq2[*dynmon.Step, error]

// acceptsSSE reports whether the client asked for Server-Sent Events.
func acceptsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// acceptsBufferedJSON reports whether the client asked for the buffered
// terminal-result mode: no stream, just the Result's exact JSON bytes.
func acceptsBufferedJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(b, '\n'))
}

// writeJSON writes v as a JSON body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(v)
	w.Write(append(b, '\n'))
}

// readBody reads the request body under the size cap.  Oversized bodies are
// rejected with 413 before any parsing; the returned bool says whether the
// response has already been written.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return nil, false
	}
	return body, true
}

// parseSubmission decodes a run submission: a spec file (system + initial +
// run) or a checkpoint (resumes the run it describes).  The two are
// distinguished by their wire shape — only checkpoints carry a top-level
// "config" — and both parse strictly (truncated bodies and unknown fields
// are errors).
func parseSubmission(body []byte) (*dynmon.FileSpec, *dynmon.Checkpoint, error) {
	var probe struct {
		Config *json.RawMessage `json:"config"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, nil, err
	}
	if probe.Config != nil {
		cp, err := dynmon.ParseCheckpoint(body)
		if err != nil {
			return nil, nil, err
		}
		return nil, cp, nil
	}
	fs, err := dynmon.ParseFileSpec(body)
	if err != nil {
		return nil, nil, err
	}
	return fs, nil, nil
}

// buildRun instantiates a spec's system (cached by digest) and initial
// configuration.
func (s *Server) buildRun(fs *dynmon.FileSpec) (*dynmon.System, *dynmon.Coloring, error) {
	sysDigest, err := fs.System.Digest()
	if err != nil {
		return nil, nil, err
	}
	sys, err := s.systemFor(sysDigest, &fs.System)
	if err != nil {
		return nil, nil, err
	}
	target := fs.Run.Target
	if target == dynmon.None {
		target = 1
	}
	if fs.Initial == nil {
		return nil, nil, errors.New("spec has no initial section")
	}
	cons, err := sys.BuildInitial(fs.Initial, target)
	if err != nil {
		return nil, nil, err
	}
	return sys, cons.Coloring, nil
}

// handleRun is POST /v1/runs: submit a spec (or checkpoint) and follow the
// run to its terminal Result on this connection.  Response modes:
//
//   - NDJSON (default): step events, then one result/error event whose
//     "result" field carries the terminal Result's exact bytes
//   - SSE (Accept: text/event-stream): the same events as SSE frames
//   - buffered (Accept: application/json): just the Result JSON
//
// Spec submissions are served from the result cache when the canonical
// digest hits; checkpoint submissions always execute (a resumed segment is
// not a complete run, so it is never cached — but its terminal Result is
// still bit-identical to the uninterrupted run's).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	fs, cp, err := parseSubmission(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Cache lookup (spec submissions only) — before admission, so hits cost
	// no worker slot.
	var digest string
	if fs != nil {
		if digest, err = fs.Digest(); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if v, ok := s.results.Get(digest); ok {
			s.metrics.CacheHits.Add(1)
			s.serveResult(w, r, v.(*cachedResult).json, true)
			return
		}
		s.metrics.CacheMisses.Add(1)
	}

	release, err := s.acquire(r.Context())
	if err != nil {
		s.admissionError(w, err)
		return
	}
	defer release()

	ctx, cancel := s.runContext(r.Context())
	defer cancel()

	var (
		sys     *dynmon.System
		initial *dynmon.Coloring
	)
	if fs != nil {
		if sys, initial, err = s.buildRun(fs); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	} else {
		if cp.System == nil {
			httpError(w, http.StatusUnprocessableEntity, "checkpoint has no embedded system spec")
			return
		}
		sysDigest, derr := cp.System.Digest()
		if derr != nil {
			httpError(w, http.StatusUnprocessableEntity, derr.Error())
			return
		}
		if sys, err = s.systemFor(sysDigest, cp.System); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	}

	s.metrics.RunsStarted.Add(1)
	started := time.Now()
	var seq = sys.Steps(ctx, initial, dynmon.WithRunSpec(fsRun(fs)))
	if cp != nil {
		// Resume re-applies the checkpoint's own run spec; a checkpoint
		// whose embedded state disagrees with its system (wrong dimensions,
		// mismatched spec) fails validation on the first pull below.
		seq = sys.ResumeSteps(ctx, cp)
	}

	if acceptsBufferedJSON(r) {
		s.runBuffered(w, seq, fs != nil, digest, started)
		return
	}
	s.runStreaming(w, r, seq, fs != nil, digest, started)
}

// fsRun returns the spec's run section (zero for checkpoint submissions,
// where it is unused).
func fsRun(fs *dynmon.FileSpec) dynmon.RunSpec {
	if fs == nil {
		return dynmon.RunSpec{}
	}
	return fs.Run
}

// runContext applies the per-run budget.
func (s *Server) runContext(parent context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RunTimeout > 0 {
		return context.WithTimeout(parent, s.cfg.RunTimeout)
	}
	return context.WithCancel(parent)
}

// admissionError maps admission failures to statuses: 429 when shed, 503
// while draining.  The Retry-After on a shed reflects actual queue
// pressure — the estimated time to drain the current queue at the observed
// service rate — so backed-off clients return when capacity plausibly
// exists instead of hammering a fixed 1s cadence.
func (s *Server) admissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errShed):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		httpError(w, http.StatusTooManyRequests, "queue full, request shed")
	case errors.Is(err, errDraining):
		httpError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		// Client went away while queued; nothing useful to write.
	}
}

// runBuffered drains the stream and answers with the terminal Result's
// exact JSON bytes — the mode CI diffs against the offline CLI.
func (s *Server) runBuffered(w http.ResponseWriter, seq stepSeq, cacheable bool, digest string, started time.Time) {
	var resJSON []byte
	for st, err := range seq {
		if err != nil {
			s.metrics.RunsFailed.Add(1)
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		s.metrics.Steps.Add(1)
		if st.Done() {
			var merr error
			if resJSON, merr = s.settleInline(st.Result(), cacheable, digest); merr != nil {
				httpError(w, http.StatusInternalServerError, merr.Error())
				return
			}
		}
	}
	if resJSON == nil {
		s.metrics.RunsFailed.Add(1)
		httpError(w, http.StatusInternalServerError, "run ended without a terminal result")
		return
	}
	s.observeRunDuration(time.Since(started))
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(resJSON, '\n'))
}

// runStreaming follows the stream over NDJSON or SSE.  Any error after the
// first event becomes a terminal error event (headers are long gone).
func (s *Server) runStreaming(w http.ResponseWriter, r *http.Request, seq stepSeq, cacheable bool, digest string, started time.Time) {
	out := s.streamWriter(w, r)
	for st, err := range seq {
		if err != nil {
			s.metrics.RunsFailed.Add(1)
			out.event(streamEvent{kind: eventError, err: err.Error()})
			return
		}
		s.metrics.Steps.Add(1)
		if st.Done() {
			resJSON, merr := s.settleInline(st.Result(), cacheable, digest)
			if merr != nil {
				out.event(streamEvent{kind: eventError, err: merr.Error()})
				return
			}
			s.observeRunDuration(time.Since(started))
			out.event(resultEvent(resJSON, false))
			return
		}
		if err := out.event(streamEvent{kind: eventStep, round: st.Round(), changed: st.Changed()}); err != nil {
			// Client gone: an inline run has no detached owner, stop it.
			s.metrics.RunsFailed.Add(1)
			return
		}
	}
	s.metrics.RunsFailed.Add(1)
	out.event(streamEvent{kind: eventError, err: "run ended without a terminal result"})
}

// settleInline records an inline run's terminal Result: metrics, kernel
// counts and (for spec submissions) the result cache.
func (s *Server) settleInline(res *dynmon.Result, cacheable bool, digest string) ([]byte, error) {
	b, err := json.Marshal(res)
	if err != nil {
		s.metrics.RunsFailed.Add(1)
		return nil, err
	}
	kernel := res.Kernel.String()
	s.metrics.RunsCompleted.Add(1)
	s.metrics.CountKernel(kernel)
	if cacheable {
		s.results.Put(digest, &cachedResult{json: b, kernel: kernel})
	}
	return b, nil
}

// serveResult answers with an already-terminal result in the client's
// requested mode.
func (s *Server) serveResult(w http.ResponseWriter, r *http.Request, resJSON []byte, cached bool) {
	if acceptsBufferedJSON(r) {
		w.Header().Set("Content-Type", "application/json")
		if cached {
			w.Header().Set("X-Dynmond-Cache", "hit")
		}
		w.Write(append(resJSON, '\n'))
		return
	}
	writerFor(w, r).event(resultEvent(resJSON, cached))
}

// handleSubmitJob is POST /v1/jobs: register the spec as a detached job and
// answer 202 with its status immediately.  The job runs independently of
// any connection; attach with GET /v1/jobs/{id}.  A cache hit completes the
// job instantly without occupying a worker.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	fs, cp, err := parseSubmission(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if cp != nil {
		httpError(w, http.StatusBadRequest, "jobs are submitted as spec files; POST checkpoints to /v1/runs")
		return
	}
	digest, err := fs.Digest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.newJob(fs, digest, true)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if v, ok := s.results.Get(digest); ok {
		s.metrics.CacheHits.Add(1)
		s.completeFromCache(j, v.(*cachedResult).json)
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	s.metrics.CacheMisses.Add(1)
	if err := s.startJob(j); err != nil {
		s.jobs.remove(j.id)
		s.admissionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleListJobs is GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

// handleAttachJob is GET /v1/jobs/{id}: (re-)attach to a job's stream.  An
// evicted job is resumed from its checkpoint — the reconnect path: the
// terminal Result is bit-identical to an uninterrupted run's.  In buffered
// mode (Accept: application/json) the handler blocks until the job is
// terminal and answers with the Result JSON alone.
func (s *Server) handleAttachJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	buffered := acceptsBufferedJSON(r)
	var out eventWriter
	if !buffered {
		out = s.streamWriter(w, r)
		st := j.status()
		out.event(streamEvent{kind: eventJob, status: &st})
	}

	for {
		sub, state := j.subscribe()
		if sub == nil {
			switch state {
			case jobDone:
				j.mu.Lock()
				resJSON := j.resultJSON
				j.mu.Unlock()
				if buffered {
					s.serveResult(w, r, resJSON, false)
				} else {
					out.event(resultEvent(resJSON, false))
				}
				return
			case jobFailed, jobCanceled:
				j.mu.Lock()
				msg := j.errMsg
				j.mu.Unlock()
				if buffered {
					httpError(w, http.StatusUnprocessableEntity, msg)
				} else {
					out.event(streamEvent{kind: eventError, err: msg})
				}
				return
			case jobEvicted:
				if err := s.startJob(j); err != nil {
					if buffered {
						s.admissionError(w, err)
					} else {
						out.event(streamEvent{kind: eventError, err: err.Error()})
					}
					return
				}
				continue
			}
		}
		if !s.followSegment(r, out, sub, j) {
			return
		}
	}
}

// followSegment relays one running segment's events to the client until the
// segment settles (channel close → true: re-read the job) or the client
// disconnects (false).
func (s *Server) followSegment(r *http.Request, out eventWriter, sub *jobSub, j *job) bool {
	defer j.unsubscribe(sub)
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				if out != nil {
					j.mu.Lock()
					state, round := j.state, j.round
					j.mu.Unlock()
					if state == jobEvicted {
						out.event(streamEvent{kind: eventEvicted, round: round})
					}
				}
				return true
			}
			if out != nil {
				if err := out.event(ev); err != nil {
					return false // client gone; the job keeps running
				}
			}
		case <-r.Context().Done():
			return false
		}
	}
}

// handleJobCheckpoint is GET /v1/jobs/{id}/checkpoint: the newest durable
// checkpoint, as accepted by POST /v1/runs and the offline CLI's -resume.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	b, err := j.checkpointJSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if b == nil {
		httpError(w, http.StatusNotFound, "job has no checkpoint yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleEvictJob is POST /v1/jobs/{id}/evict: checkpoint the job at its
// next round boundary and free its worker.  The job stays resumable.
func (s *Server) handleEvictJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	live := j.state == jobQueued || j.state == jobRunning
	j.mu.Unlock()
	if live {
		j.evict.Store(true)
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleCancelJob is DELETE /v1/jobs/{id}.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

// handleHealthz is GET /healthz: pure liveness.  It answers 200 as long as
// the process serves requests — draining included, because a draining
// server is alive and must not be restarted by its supervisor mid-drain.
// Routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz is GET /readyz: readiness for load balancers.  503 while
// startup recovery is still restarting persisted jobs and from the moment
// SIGTERM drain begins — so balancers stop routing before the drain starts
// refusing submissions — 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		httpError(w, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		httpError(w, http.StatusServiceUnavailable, "recovering persisted jobs")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ready\n"))
	}
}
