package loadtest

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffWait pins the wait computation: exponential growth under the
// cap, jitter bounded to [50%, 150%), and the server's Retry-After hint
// winning only when it exceeds the computed backoff.
func TestBackoffWait(t *testing.T) {
	opts := Options{RetryBackoff: 100 * time.Millisecond, RetryBackoffMax: 800 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))

	for attempt, base := range []time.Duration{
		100 * time.Millisecond, // 0: base
		200 * time.Millisecond, // 1: doubled
		400 * time.Millisecond, // 2
		800 * time.Millisecond, // 3: at the cap
		800 * time.Millisecond, // 4: still capped
	} {
		for i := 0; i < 100; i++ {
			w := backoffWait(opts, rng, attempt, "")
			if w < base/2 || w >= base+base/2 {
				t.Fatalf("attempt %d: wait %v outside [%v, %v)", attempt, w, base/2, base+base/2)
			}
		}
	}

	// A huge attempt must not overflow past the cap.
	if w := backoffWait(opts, rng, 62, ""); w >= 1200*time.Millisecond {
		t.Fatalf("overflowed attempt waits %v, want capped", w)
	}

	// Retry-After above the backoff wins; below it, the backoff stands.
	if w := backoffWait(opts, rng, 0, "2"); w != 2*time.Second {
		t.Fatalf("Retry-After 2s ignored: wait %v", w)
	}
	for i := 0; i < 100; i++ {
		if w := backoffWait(opts, rng, 3, "0"); w < 400*time.Millisecond {
			t.Fatalf("Retry-After 0 dragged the wait down to %v", w)
		}
	}
	// Garbage hints are ignored.
	if w := backoffWait(opts, rng, 0, "soon"); w >= 150*time.Millisecond {
		t.Fatalf("unparseable Retry-After changed the wait: %v", w)
	}
}
