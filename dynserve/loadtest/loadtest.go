// Package loadtest drives a running dynmond server with concurrent run
// submissions and reports throughput and latency percentiles.  Its Report
// serializes to the repository's benchjson/v1 schema, so server performance
// rides the same regression gate (cmd/benchjson) as the engine's
// micro-benchmarks.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a load run.
type Options struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Specs are the request bodies to submit, round-robin.  Identical specs
	// exercise the result cache; distinct ones exercise the worker pool.
	Specs [][]byte
	// Total is the number of submissions (default 1000).
	Total int
	// Concurrency is the number of in-flight clients (default 64).
	Concurrency int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject an in-process one).
	Client *http.Client
}

// Report is the outcome of a load run.
type Report struct {
	Total       int           `json:"total"`
	OK          int           `json:"ok"`
	Shed        int           `json:"shed"` // 429s: intentional load shedding
	Errors      int           `json:"errors"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Throughput  float64       `json:"throughput_rps"` // completed (OK) per second
	P50         time.Duration `json:"p50_ns"`
	P90         time.Duration `json:"p90_ns"`
	P99         time.Duration `json:"p99_ns"`
	Max         time.Duration `json:"max_ns"`
	Concurrency int           `json:"concurrency"`
}

// Run submits opts.Total runs against the server with opts.Concurrency
// workers and collects per-request latencies.  Requests use the buffered
// JSON mode, so one request = one terminal Result.  429 responses count as
// Shed, not Errors — shedding under pressure is the server behaving as
// specified; anything else non-2xx is an error.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("loadtest: no server URL")
	}
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("loadtest: no specs to submit")
	}
	if opts.Total <= 0 {
		opts.Total = 1000
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 64
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}

	var (
		next      atomic.Int64
		ok, shed  atomic.Int64
		errs      atomic.Int64
		latMu     sync.Mutex
		latencies = make([]time.Duration, 0, opts.Total)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Total) || ctx.Err() != nil {
					return
				}
				spec := opts.Specs[i%int64(len(opts.Specs))]
				t0 := time.Now()
				status, err := submit(ctx, client, opts.URL, spec)
				lat := time.Since(t0)
				switch {
				case err != nil:
					errs.Add(1)
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				case status == http.StatusOK:
					ok.Add(1)
					latMu.Lock()
					latencies = append(latencies, lat)
					latMu.Unlock()
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Total:       opts.Total,
		OK:          int(ok.Load()),
		Shed:        int(shed.Load()),
		Errors:      int(errs.Load()),
		Elapsed:     elapsed,
		Concurrency: opts.Concurrency,
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P90 = percentile(latencies, 0.90)
	rep.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.Max = latencies[n-1]
	}
	return rep, nil
}

// submit POSTs one spec in buffered mode and drains the response.
func submit(ctx context.Context, client *http.Client, base string, spec []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/runs", bytes.NewReader(spec))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// benchFile mirrors the benchjson/v1 schema (cmd/benchjson).
type benchFile struct {
	Schema     string           `json:"schema"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	Pkg        string           `json:"pkg,omitempty"`
	Benchmarks []benchBenchmark `json:"benchmarks"`
}

type benchBenchmark struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMax  float64 `json:"ns_per_op_max"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchJSON renders the report in the benchjson/v1 schema so cmd/benchjson
// can gate regressions against a checked-in baseline.  Latency percentiles
// become BenchmarkDynmondSubmit/{p50,p90,p99} (ns_per_op = the percentile)
// and throughput becomes BenchmarkDynmondThroughput (ns_per_op = mean ns per
// completed request, so "slower" still means "worse").
func (r *Report) BenchJSON() ([]byte, error) {
	nsPerReq := 0.0
	if r.OK > 0 {
		nsPerReq = float64(r.Elapsed.Nanoseconds()) / float64(r.OK)
	}
	mk := func(name string, ns float64) benchBenchmark {
		return benchBenchmark{Name: name, Runs: r.OK, NsPerOp: ns, NsPerOpMean: ns, NsPerOpMax: ns}
	}
	f := benchFile{
		Schema: "benchjson/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Pkg:    "repro/dynserve",
		Benchmarks: []benchBenchmark{
			mk("BenchmarkDynmondSubmit/p50", float64(r.P50.Nanoseconds())),
			mk("BenchmarkDynmondSubmit/p90", float64(r.P90.Nanoseconds())),
			mk("BenchmarkDynmondSubmit/p99", float64(r.P99.Nanoseconds())),
			mk("BenchmarkDynmondThroughput", nsPerReq),
		},
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
