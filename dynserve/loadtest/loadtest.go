// Package loadtest drives a running dynmond server with concurrent run
// submissions and reports throughput and latency percentiles.  Its Report
// serializes to the repository's benchjson/v1 schema, so server performance
// rides the same regression gate (cmd/benchjson) as the engine's
// micro-benchmarks.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a load run.
type Options struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Specs are the request bodies to submit, round-robin.  Identical specs
	// exercise the result cache; distinct ones exercise the worker pool.
	Specs [][]byte
	// Total is the number of submissions (default 1000).
	Total int
	// Concurrency is the number of in-flight clients (default 64).
	Concurrency int
	// Timeout bounds each submission including all its retries (default
	// 30s); the deadline propagates to every attempt's request context.
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject an in-process one).
	Client *http.Client
	// Retries is the number of retry attempts after a 429 or 503 before
	// the response counts against the report (default 0: each status is
	// final, preserving the pure load-shedding measurement).
	Retries int
	// RetryBackoff is the base backoff before the first retry; successive
	// retries double it, each jittered to 50-150% so synchronized clients
	// desynchronize (default 100ms).  The server's Retry-After hint, when
	// larger, takes precedence over the computed backoff.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff (default 5s).
	RetryBackoffMax time.Duration
	// Seed makes the retry jitter reproducible (default 1).
	Seed int64
}

// Report is the outcome of a load run.
type Report struct {
	Total       int           `json:"total"`
	OK          int           `json:"ok"`
	Shed        int           `json:"shed"` // 429s: intentional load shedding
	Errors      int           `json:"errors"`
	Retries     int           `json:"retries"` // retry attempts across all submissions
	Elapsed     time.Duration `json:"elapsed_ns"`
	Throughput  float64       `json:"throughput_rps"` // completed (OK) per second
	P50         time.Duration `json:"p50_ns"`
	P90         time.Duration `json:"p90_ns"`
	P99         time.Duration `json:"p99_ns"`
	Max         time.Duration `json:"max_ns"`
	Concurrency int           `json:"concurrency"`
}

// Run submits opts.Total runs against the server with opts.Concurrency
// workers and collects per-request latencies.  Requests use the buffered
// JSON mode, so one request = one terminal Result.  429 responses count as
// Shed, not Errors — shedding under pressure is the server behaving as
// specified; anything else non-2xx is an error.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("loadtest: no server URL")
	}
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("loadtest: no specs to submit")
	}
	if opts.Total <= 0 {
		opts.Total = 1000
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 64
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.RetryBackoffMax <= 0 {
		opts.RetryBackoffMax = 5 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}

	var (
		next      atomic.Int64
		ok, shed  atomic.Int64
		errs      atomic.Int64
		retries   atomic.Int64
		latMu     sync.Mutex
		latencies = make([]time.Duration, 0, opts.Total)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker jitter source: deterministic under Seed, no
			// cross-worker lock contention on the hot path.
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)))
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Total) || ctx.Err() != nil {
					return
				}
				spec := opts.Specs[i%int64(len(opts.Specs))]
				t0 := time.Now()
				status, err := submitWithRetry(ctx, client, opts, rng, spec, &retries)
				lat := time.Since(t0)
				switch {
				case err != nil:
					errs.Add(1)
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				case status == http.StatusOK:
					ok.Add(1)
					latMu.Lock()
					latencies = append(latencies, lat)
					latMu.Unlock()
				default:
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Total:       opts.Total,
		OK:          int(ok.Load()),
		Shed:        int(shed.Load()),
		Errors:      int(errs.Load()),
		Retries:     int(retries.Load()),
		Elapsed:     elapsed,
		Concurrency: opts.Concurrency,
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P90 = percentile(latencies, 0.90)
	rep.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.Max = latencies[n-1]
	}
	return rep, nil
}

// submitWithRetry runs one submission's full attempt chain.  The whole
// chain — every attempt and every backoff sleep — shares one deadline of
// opts.Timeout, propagated through the request context, so a retrying
// client can never hold a slot longer than a non-retrying one would.
// Retryable statuses are 429 (shed) and 503 (draining/unready); the wait
// before each retry is the larger of the jittered exponential backoff and
// the server's Retry-After hint.
func submitWithRetry(ctx context.Context, client *http.Client, opts Options, rng *rand.Rand, spec []byte, retryCount *atomic.Int64) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	var status int
	var retryAfter string
	var err error
	for attempt := 0; ; attempt++ {
		status, retryAfter, err = submit(ctx, client, opts.URL, spec)
		if err != nil || attempt >= opts.Retries || !retryable(status) {
			return status, err
		}
		wait := backoffWait(opts, rng, attempt, retryAfter)
		select {
		case <-ctx.Done():
			// Out of deadline: the last status stands as the outcome.
			return status, nil
		case <-time.After(wait):
		}
		retryCount.Add(1)
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoffWait computes the pre-retry wait: base<<attempt capped at the max,
// jittered to [50%,150%), then raised to the server's Retry-After hint if
// that is larger — the server's pressure estimate beats the client's guess.
func backoffWait(opts Options, rng *rand.Rand, attempt int, retryAfter string) time.Duration {
	backoff := opts.RetryBackoff << attempt
	if backoff > opts.RetryBackoffMax || backoff <= 0 {
		backoff = opts.RetryBackoffMax
	}
	wait := time.Duration((0.5 + rng.Float64()) * float64(backoff))
	if secs, err := strconv.Atoi(retryAfter); err == nil {
		if hint := time.Duration(secs) * time.Second; hint > wait {
			wait = hint
		}
	}
	return wait
}

// submit POSTs one spec in buffered mode and drains the response.
func submit(ctx context.Context, client *http.Client, base string, spec []byte) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/runs", bytes.NewReader(spec))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	retryAfter := resp.Header.Get("Retry-After")
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, retryAfter, err
	}
	return resp.StatusCode, retryAfter, nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// benchFile mirrors the benchjson/v1 schema (cmd/benchjson).
type benchFile struct {
	Schema     string           `json:"schema"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	Pkg        string           `json:"pkg,omitempty"`
	Benchmarks []benchBenchmark `json:"benchmarks"`
}

type benchBenchmark struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMax  float64 `json:"ns_per_op_max"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchJSON renders the report in the benchjson/v1 schema so cmd/benchjson
// can gate regressions against a checked-in baseline.  Latency percentiles
// become BenchmarkDynmondSubmit/{p50,p90,p99} (ns_per_op = the percentile)
// and throughput becomes BenchmarkDynmondThroughput (ns_per_op = mean ns per
// completed request, so "slower" still means "worse").
func (r *Report) BenchJSON() ([]byte, error) {
	nsPerReq := 0.0
	if r.OK > 0 {
		nsPerReq = float64(r.Elapsed.Nanoseconds()) / float64(r.OK)
	}
	mk := func(name string, ns float64) benchBenchmark {
		return benchBenchmark{Name: name, Runs: r.OK, NsPerOp: ns, NsPerOpMean: ns, NsPerOpMax: ns}
	}
	f := benchFile{
		Schema: "benchjson/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Pkg:    "repro/dynserve",
		Benchmarks: []benchBenchmark{
			mk("BenchmarkDynmondSubmit/p50", float64(r.P50.Nanoseconds())),
			mk("BenchmarkDynmondSubmit/p90", float64(r.P90.Nanoseconds())),
			mk("BenchmarkDynmondSubmit/p99", float64(r.P99.Nanoseconds())),
			mk("BenchmarkDynmondThroughput", nsPerReq),
		},
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
