package dynserve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dynmon"
)

// goldenSpec reads one of the repository's golden spec files.
func goldenSpec(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "specs", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// offlineResult runs a spec through the library directly — the reference
// the server's streamed and cached results must match byte for byte.
func offlineResult(t *testing.T, specJSON []byte) []byte {
	t.Helper()
	fs, err := dynmon.ParseFileSpec(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	sys, cons, _, err := fs.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), cons.Coloring, dynmon.WithRunSpec(fs.Run))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRun(t *testing.T, url string, body []byte, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunBufferedColdAndCached pins the cache/determinism contract over
// HTTP: the buffered response carries exactly the bytes an offline library
// run produces, cold and cached alike, and the metrics see one miss then
// one hit.
func TestRunBufferedColdAndCached(t *testing.T) {
	spec := goldenSpec(t, "ba-200-hubs.json")
	want := offlineResult(t, spec)
	srv, ts := newTestServer(t, Config{Workers: 2})

	resp := postRun(t, ts.URL, spec, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run status %d", resp.StatusCode)
	}
	if got := readAll(t, resp); !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Fatalf("cold buffered result differs from offline run:\n got %s\nwant %s", got, want)
	}
	if h, m := srv.metrics.CacheHits.Load(), srv.metrics.CacheMisses.Load(); h != 0 || m != 1 {
		t.Fatalf("after cold run: hits=%d misses=%d, want 0/1", h, m)
	}

	resp = postRun(t, ts.URL, spec, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached run status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Dynmond-Cache") != "hit" {
		t.Fatal("second submission did not hit the cache")
	}
	if got := readAll(t, resp); !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Fatalf("cached result differs from offline run")
	}
	if h, m := srv.metrics.CacheHits.Load(), srv.metrics.CacheMisses.Load(); h != 1 || m != 1 {
		t.Fatalf("after cached run: hits=%d misses=%d, want 1/1", h, m)
	}
	if rate := srv.metrics.CacheHitRate(); rate != 0.5 {
		t.Fatalf("cache hit rate %v, want 0.5", rate)
	}
}

// TestRunNDJSONStream pins the default streaming mode: step events for
// every round, then one result event whose "result" field carries the exact
// offline bytes (json.RawMessage passthrough, no re-marshal).
func TestRunNDJSONStream(t *testing.T) {
	spec := goldenSpec(t, "ws-300-random.json")
	want := offlineResult(t, spec)
	var wantRes struct {
		Rounds int `json:"rounds"`
	}
	if err := json.Unmarshal(want, &wantRes); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postRun(t, ts.URL, spec, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var steps int
	var resultLine []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev struct {
			Event  string          `json:"event"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "step":
			steps++
		case "result":
			resultLine = append([]byte(nil), ev.Result...)
		case "error":
			t.Fatalf("stream error event: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if resultLine == nil {
		t.Fatal("stream carried no result event")
	}
	if !bytes.Equal(resultLine, want) {
		t.Fatalf("streamed result differs from offline run:\n got %s\nwant %s", resultLine, want)
	}
	// The terminal round rides the result event, not a step event.
	if steps != wantRes.Rounds-1 {
		t.Fatalf("streamed %d step events, want %d (one per non-terminal round)", steps, wantRes.Rounds-1)
	}
}

// TestRunSSEStream pins the SSE framing: event fields name the kinds, the
// terminal frame is a result, and its data payload embeds the exact bytes.
func TestRunSSEStream(t *testing.T) {
	spec := goldenSpec(t, "ba-200-hubs.json")
	want := offlineResult(t, spec)
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postRun(t, ts.URL, spec, "text/event-stream")
	body := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "event: step\n") {
		t.Fatal("SSE stream has no step frames")
	}
	idx := strings.LastIndex(string(body), "event: result\ndata: ")
	if idx < 0 {
		t.Fatal("SSE stream has no result frame")
	}
	data := string(body[idx+len("event: result\ndata: "):])
	data = strings.TrimRight(data, "\n")
	var ev struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(ev.Result), want) {
		t.Fatal("SSE result payload differs from offline run")
	}
}

// TestRunCheckpointSubmission pins the server-side resume path: a
// checkpoint taken mid-run offline, POSTed to /v1/runs, finishes with the
// terminal Result of the uninterrupted run — bit-identical — and is never
// cached (a resumed segment is not a complete run).
func TestRunCheckpointSubmission(t *testing.T) {
	spec := goldenSpec(t, "mesh-9x9-minimum.json")
	want := offlineResult(t, spec)

	// Take a checkpoint at round 3 of the 8-round run.
	fs, err := dynmon.ParseFileSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	sys, cons, _, err := fs.Build()
	if err != nil {
		t.Fatal(err)
	}
	var cpJSON []byte
	for st, err := range sys.Steps(context.Background(), cons.Coloring, dynmon.WithRunSpec(fs.Run)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Round() == 3 {
			cp, err := st.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if cpJSON, err = cp.JSON(); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	srv, ts := newTestServer(t, Config{Workers: 2})
	resp := postRun(t, ts.URL, cpJSON, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint submission status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := readAll(t, resp); !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Fatalf("resumed result differs from uninterrupted offline run:\n got %s\nwant %s", got, want)
	}
	if n := srv.results.Len(); n != 0 {
		t.Fatalf("checkpoint submission was cached (%d entries), want none", n)
	}
}

// TestHealthzAndDrain pins the ops contract: /healthz is pure liveness and
// stays 200 through a drain (the process is alive and draining by design);
// /readyz flips to 503 so load balancers stop routing, and new submissions
// are refused with 503.
func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if readAll(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %d, want 200", path, resp.StatusCode)
		}
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining %d, want 200 (liveness must not kill a draining pod)", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining %d, want 503", resp.StatusCode)
	}
	resp = postRun(t, ts.URL, goldenSpec(t, "mesh-9x9-minimum.json"), "application/json")
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining %d, want 503", resp.StatusCode)
	}
}

// TestMetricsEndpoint smoke-tests the Prometheus exposition after a run.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	readAll(t, postRun(t, ts.URL, goldenSpec(t, "ba-200-hubs.json"), "application/json"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	for _, want := range []string{
		"dynmond_runs_completed_total 1",
		"dynmond_cache_misses_total 1",
		"dynmond_steps_total",
		"dynmond_queue_depth",
		`dynmond_runs_by_kernel_total{kernel="frontier"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
