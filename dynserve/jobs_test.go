package dynserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/dynmon"
)

// longSpec is a run long enough to evict mid-flight: a 256x256 mesh minimum
// dynamo (255 rounds) on the forced full-sweep kernel, so each round does
// real work and the test can observe the job between rounds.
func longSpec(t *testing.T) []byte {
	t.Helper()
	fs := &dynmon.FileSpec{
		Initial: &dynmon.InitialSpec{Config: "minimum"},
		Run: dynmon.RunSpec{
			Target:                1,
			StopWhenMonochromatic: true,
			DetectCycles:          true,
			Kernel:                "sweep",
		},
	}
	fs.System.Substrate.Topology = &dynmon.TopologySpec{Name: "toroidal-mesh", Rows: 256, Cols: 256}
	fs.System.Colors = 5
	fs.System.Rule = "smp"
	b, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func submitJob(t *testing.T, url string, body []byte) JobStatus {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submission status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func jobStatus(t *testing.T, srv *Server, id string) JobStatus {
	t.Helper()
	j, ok := srv.jobs.get(id)
	if !ok {
		t.Fatalf("job %s disappeared", id)
	}
	return j.status()
}

// TestJobEvictResumeBitIdentical is the durability pin: run a job, evict it
// mid-run (checkpoint + free the worker), re-attach, and require the
// resumed terminal Result to be byte-identical to an uninterrupted offline
// run — the kill-and-resume contract the server sells.
func TestJobEvictResumeBitIdentical(t *testing.T) {
	spec := longSpec(t)
	want := offlineResult(t, spec)
	srv, ts := newTestServer(t, Config{Workers: 1, CheckpointEvery: 10})

	st := submitJob(t, ts.URL, spec)

	// Wait for real progress, then evict over HTTP.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := jobStatus(t, srv, st.ID)
		if jobTerminal(cur.State) {
			t.Fatalf("job reached %s before the test could evict it", cur.State)
		}
		if cur.Round >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", cur)
		}
		runtime.Gosched()
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/evict", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("evict status %d", resp.StatusCode)
	}
	for {
		cur := jobStatus(t, srv, st.ID)
		if cur.State == jobEvicted {
			if cur.CheckpointRound < 20 {
				t.Fatalf("evicted with checkpoint at round %d, want >= 20 (round-boundary snapshot)", cur.CheckpointRound)
			}
			break
		}
		if jobTerminal(cur.State) {
			t.Fatalf("job reached %s before eviction landed", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("eviction never landed: %+v", cur)
		}
		runtime.Gosched()
	}
	if n := srv.metrics.JobsEvicted.Load(); n != 1 {
		t.Fatalf("JobsEvicted = %d, want 1", n)
	}

	// The checkpoint endpoint serves the parked state.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	cpBody := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint fetch status %d", resp.StatusCode)
	}
	if _, err := dynmon.ParseCheckpoint(cpBody); err != nil {
		t.Fatalf("served checkpoint does not parse: %v", err)
	}

	// Re-attach in buffered mode: resumes from the checkpoint and blocks
	// until terminal.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-attach status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Fatal("resumed job's terminal Result differs from an uninterrupted offline run")
	}
	if n := srv.metrics.JobsResumed.Load(); n != 1 {
		t.Fatalf("JobsResumed = %d, want 1", n)
	}
}

// TestJobCancel pins DELETE: a live job settles as canceled and stays
// listable with its error.
func TestJobCancel(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, ts.URL, longSpec(t))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := jobStatus(t, srv, st.ID)
		if cur.State == jobCanceled {
			break
		}
		if cur.State == jobDone {
			t.Fatal("job completed despite cancellation")
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never settled: %+v", cur)
		}
		runtime.Gosched()
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.Unmarshal(readAll(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].State != jobCanceled {
		t.Fatalf("job list %+v, want the one canceled job", list)
	}
}

// TestJobCacheHitCompletesInstantly pins that a job for an
// already-cached spec settles done without occupying a worker.
func TestJobCacheHitCompletesInstantly(t *testing.T) {
	spec := goldenSpec(t, "ba-200-hubs.json")
	want := offlineResult(t, spec)
	srv, ts := newTestServer(t, Config{Workers: 1})

	// Prime the cache with an inline run.
	readAll(t, postRun(t, ts.URL, spec, "application/json"))

	st := submitJob(t, ts.URL, spec)
	if st.State != jobDone {
		t.Fatalf("cached job state %q, want done at submission", st.State)
	}
	if n := srv.metrics.CacheHits.Load(); n != 1 {
		t.Fatalf("CacheHits = %d, want 1", n)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, resp); !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Fatal("cached job result differs from offline run")
	}
}

// TestDrainEvictsJobs pins the graceful-shutdown path: draining parks live
// jobs on checkpoints instead of losing them.
func TestDrainEvictsJobs(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, CheckpointEvery: 10})
	st := submitJob(t, ts.URL, longSpec(t))

	deadline := time.Now().Add(30 * time.Second)
	for jobStatus(t, srv, st.ID).Round < 5 {
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if cur := jobStatus(t, srv, st.ID); cur.State != jobEvicted {
		t.Fatalf("after drain job state %q, want evicted", cur.State)
	}
}
