package dynserve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/dynmon"
)

// TestParseBoundaryFailures pins the HTTP-boundary contract for malformed
// submissions: truncated bodies, unknown fields and oversized payloads are
// rejected with precise statuses before any simulation work happens.
func TestParseBoundaryFailures(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxRequestBytes: 4096})

	valid := string(goldenSpec(t, "mesh-9x9-minimum.json"))
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"truncated json", valid[:len(valid)/2], http.StatusBadRequest},
		{"trailing garbage", valid + "{}", http.StatusBadRequest},
		{"unknown top-level field", `{"system":{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":5},"oops":1,"initial":{"config":"minimum"},"run":{}}`, http.StatusBadRequest},
		{"unknown nested field", `{"system":{"substrate":{"topology":{"name":"mesh","rows":4,"cols":4}},"colors":5,"bogus":true},"initial":{"config":"minimum"},"run":{}}`, http.StatusBadRequest},
		{"unknown topology name", `{"system":{"substrate":{"topology":{"name":"moebius","rows":4,"cols":4}},"colors":5},"initial":{"config":"minimum"},"run":{}}`, http.StatusBadRequest},
		{"oversized body", `{"pad":"` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRun(t, ts.URL, []byte(tc.body), "application/json")
			body := readAll(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.want)
			}
			var ev struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &ev); err != nil || ev.Error == "" {
				t.Fatalf("error body %q is not a JSON error object", body)
			}
		})
	}
	if n := srv.metrics.RunsStarted.Load(); n != 0 {
		t.Fatalf("malformed submissions started %d runs, want 0", n)
	}
}

// TestCheckpointSpecMismatchRejected pins the resume-integrity check: a
// checkpoint whose embedded system spec disagrees with its own saved state
// (here: a 5x5 system claimed for a 9x9 configuration) is rejected with
// 422, never simulated.
func TestCheckpointSpecMismatchRejected(t *testing.T) {
	fs, err := dynmon.ParseFileSpec(goldenSpec(t, "mesh-9x9-minimum.json"))
	if err != nil {
		t.Fatal(err)
	}
	sys, cons, _, err := fs.Build()
	if err != nil {
		t.Fatal(err)
	}
	var cp *dynmon.Checkpoint
	for st, err := range sys.Steps(context.Background(), cons.Coloring, dynmon.WithRunSpec(fs.Run)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Round() == 2 {
			if cp, err = st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	// Forge the embedded system spec: same family, wrong dimensions.
	cp.System.Substrate.Topology.Rows = 5
	cp.System.Substrate.Topology.Cols = 5
	body, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{Workers: 1})
	resp := postRun(t, ts.URL, body, "application/json")
	respBody := readAll(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched checkpoint status %d (%s), want 422", resp.StatusCode, respBody)
	}
	if n := srv.metrics.RunsCompleted.Load(); n != 0 {
		t.Fatalf("mismatched checkpoint completed %d runs, want 0", n)
	}
}

// TestCheckpointWithoutSystemRejected pins that a bare checkpoint (no
// embedded system spec) cannot be submitted — the server has no system to
// resume it on.
func TestCheckpointWithoutSystemRejected(t *testing.T) {
	fs, err := dynmon.ParseFileSpec(goldenSpec(t, "mesh-9x9-minimum.json"))
	if err != nil {
		t.Fatal(err)
	}
	sys, cons, _, err := fs.Build()
	if err != nil {
		t.Fatal(err)
	}
	var cp *dynmon.Checkpoint
	for st, serr := range sys.Steps(context.Background(), cons.Coloring, dynmon.WithRunSpec(fs.Run)) {
		if serr != nil {
			t.Fatal(serr)
		}
		if st.Round() == 2 {
			if cp, serr = st.Checkpoint(); serr != nil {
				t.Fatal(serr)
			}
			break
		}
	}
	cp.System = nil
	body, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postRun(t, ts.URL, body, "application/json")
	respBody := readAll(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bare checkpoint status %d (%s), want 422", resp.StatusCode, respBody)
	}
}

// TestJobSubmissionRejectsCheckpoints pins that the jobs endpoint only
// takes spec files.
func TestJobSubmissionRejectsCheckpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := []byte(`{"round":3,"config":{"rows":2,"cols":2,"cells":[0,0,0,0]},"changes_per_round":[1,1,1]}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("checkpoint job submission status %d, want 400", resp.StatusCode)
	}
}
