package dynserve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is the server's ops surface: monotonic counters plus live gauges,
// exported as Prometheus text (GET /metrics) and as an expvar-compatible
// snapshot map (Snapshot — cmd/dynmond publishes it under /debug/vars).
// Rates (steps/sec, requests/sec) are derived by the scraper from the
// counters, per Prometheus convention.
type Metrics struct {
	// Counters.
	Requests       atomic.Int64 // run/job submissions accepted for parsing
	RunsStarted    atomic.Int64 // runs admitted to a worker slot
	RunsCompleted  atomic.Int64 // runs that reached their terminal Result
	RunsFailed     atomic.Int64 // runs that stopped on an error or cancellation
	Steps          atomic.Int64 // simulation rounds stepped across all runs
	Shed           atomic.Int64 // submissions shed with 429 by admission control
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64
	JobsEvicted    atomic.Int64 // jobs checkpointed and parked to free a worker
	JobsResumed    atomic.Int64 // evicted jobs resumed from their checkpoint

	// Durability and fault-tolerance counters.
	PanicsRecovered       atomic.Int64 // panics caught by handler/worker recovery
	CheckpointsPersisted  atomic.Int64 // checkpoints durably written to the store
	CheckpointWriteErrors atomic.Int64 // checkpoint writes that failed (I/O or injected)
	JobsRecovered         atomic.Int64 // jobs re-registered from the store at startup
	JobsRecoveryFailed    atomic.Int64 // persisted jobs too damaged to recover

	// Gauges, wired by the server.
	QueueDepth   func() int64
	InFlight     func() int64
	CacheEntries func() int64
	JobsLive     func() int64
	Ready        func() int64 // 1 once startup recovery finished
	FaultsFired  func() int64 // injected failpoint firings (0 unless armed)

	// Per-kernel run counts ("frontier", "sweep", ...), keyed by the tier
	// the terminal Result reports.
	kernelMu   sync.Mutex
	kernelRuns map[string]int64
}

// NewMetrics returns a zeroed metrics set with no-op gauges.
func NewMetrics() *Metrics {
	zero := func() int64 { return 0 }
	return &Metrics{
		QueueDepth:   zero,
		InFlight:     zero,
		CacheEntries: zero,
		JobsLive:     zero,
		Ready:        zero,
		FaultsFired:  zero,
		kernelRuns:   make(map[string]int64),
	}
}

// CountKernel records one completed run under its kernel tier name.
func (m *Metrics) CountKernel(kernel string) {
	m.kernelMu.Lock()
	m.kernelRuns[kernel]++
	m.kernelMu.Unlock()
}

// kernelCounts returns a sorted copy of the per-kernel run counts.
func (m *Metrics) kernelCounts() []struct {
	Kernel string
	Runs   int64
} {
	m.kernelMu.Lock()
	defer m.kernelMu.Unlock()
	out := make([]struct {
		Kernel string
		Runs   int64
	}, 0, len(m.kernelRuns))
	for k, n := range m.kernelRuns {
		out = append(out, struct {
			Kernel string
			Runs   int64
		}{k, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Metrics) CacheHitRate() float64 {
	h, mi := m.CacheHits.Load(), m.CacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// Snapshot returns the full metrics state as a flat map — the expvar form.
func (m *Metrics) Snapshot() map[string]any {
	out := map[string]any{
		"requests_total":        m.Requests.Load(),
		"runs_started_total":    m.RunsStarted.Load(),
		"runs_completed_total":  m.RunsCompleted.Load(),
		"runs_failed_total":     m.RunsFailed.Load(),
		"steps_total":           m.Steps.Load(),
		"shed_total":            m.Shed.Load(),
		"cache_hits_total":      m.CacheHits.Load(),
		"cache_misses_total":    m.CacheMisses.Load(),
		"cache_evictions_total": m.CacheEvictions.Load(),
		"cache_hit_rate":        m.CacheHitRate(),
		"cache_entries":         m.CacheEntries(),
		"jobs_evicted_total":    m.JobsEvicted.Load(),
		"jobs_resumed_total":    m.JobsResumed.Load(),
		"jobs_live":             m.JobsLive(),
		"queue_depth":           m.QueueDepth(),
		"inflight_runs":         m.InFlight(),

		"panics_recovered_total":        m.PanicsRecovered.Load(),
		"checkpoints_persisted_total":   m.CheckpointsPersisted.Load(),
		"checkpoint_write_errors_total": m.CheckpointWriteErrors.Load(),
		"jobs_recovered_total":          m.JobsRecovered.Load(),
		"jobs_recovery_failed_total":    m.JobsRecoveryFailed.Load(),
		"faults_injected_total":         m.FaultsFired(),
		"ready":                         m.Ready(),
	}
	for _, kc := range m.kernelCounts() {
		out["runs_kernel_"+kc.Kernel+"_total"] = kc.Runs
	}
	return out
}

// ServePrometheus writes the metrics in the Prometheus text exposition
// format.
func (m *Metrics) ServePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP dynmond_%s %s\n# TYPE dynmond_%s counter\ndynmond_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP dynmond_%s %s\n# TYPE dynmond_%s gauge\ndynmond_%s %v\n", name, help, name, name, v)
	}
	counter("requests_total", "Run and job submissions accepted for parsing.", m.Requests.Load())
	counter("runs_started_total", "Runs admitted to a worker slot.", m.RunsStarted.Load())
	counter("runs_completed_total", "Runs that reached their terminal Result.", m.RunsCompleted.Load())
	counter("runs_failed_total", "Runs that stopped on an error or cancellation.", m.RunsFailed.Load())
	counter("steps_total", "Simulation rounds stepped across all runs (rate() of this is steps/sec).", m.Steps.Load())
	counter("shed_total", "Submissions shed with 429 by admission control.", m.Shed.Load())
	counter("cache_hits_total", "Result cache hits.", m.CacheHits.Load())
	counter("cache_misses_total", "Result cache misses.", m.CacheMisses.Load())
	counter("cache_evictions_total", "Result cache LRU evictions.", m.CacheEvictions.Load())
	counter("jobs_evicted_total", "Jobs checkpointed and parked to free a worker.", m.JobsEvicted.Load())
	counter("jobs_resumed_total", "Evicted jobs resumed from their checkpoint.", m.JobsResumed.Load())
	counter("panics_recovered_total", "Panics caught by handler/worker recovery.", m.PanicsRecovered.Load())
	counter("checkpoints_persisted_total", "Checkpoints durably written to the job store.", m.CheckpointsPersisted.Load())
	counter("checkpoint_write_errors_total", "Checkpoint writes that failed (I/O or injected fault).", m.CheckpointWriteErrors.Load())
	counter("jobs_recovered_total", "Jobs re-registered from the store at startup.", m.JobsRecovered.Load())
	counter("jobs_recovery_failed_total", "Persisted jobs too damaged to recover.", m.JobsRecoveryFailed.Load())
	counter("faults_injected_total", "Injected failpoint firings (0 unless armed).", m.FaultsFired())
	gauge("ready", "1 once startup recovery finished and submissions are served.", m.Ready())
	gauge("cache_hit_rate", "Result cache hit rate since start.", fmt.Sprintf("%.6f", m.CacheHitRate()))
	gauge("cache_entries", "Live result cache entries.", m.CacheEntries())
	gauge("queue_depth", "Submissions waiting for a worker slot.", m.QueueDepth())
	gauge("inflight_runs", "Runs currently executing.", m.InFlight())
	gauge("jobs_live", "Jobs currently tracked (queued, running, evicted or recently terminal).", m.JobsLive())
	fmt.Fprintf(w, "# HELP dynmond_runs_by_kernel_total Completed runs by engine kernel tier.\n# TYPE dynmond_runs_by_kernel_total counter\n")
	for _, kc := range m.kernelCounts() {
		fmt.Fprintf(w, "dynmond_runs_by_kernel_total{kernel=%q} %d\n", kc.Kernel, kc.Runs)
	}
}
