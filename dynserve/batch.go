package dynserve

import (
	"encoding/json"
	"net/http"

	"repro/dynmon"
)

// batchItem is one entry of the /v1/batch response: the item's content
// address (equal to the digest of the equivalent single-run spec file),
// whether the result came from the cache, and the Result's exact JSON
// bytes — the same bytes POST /v1/runs answers with for that spec.
type batchItem struct {
	Digest string          `json:"digest"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// handleBatch is POST /v1/batch: submit a dynmon.BatchSpec (one system +
// run section, many initial items) and answer with one Result per item, in
// item order, keyed by per-item digest.  Items share the /v1/runs result
// cache: each item's digest is exactly the digest of the single-run spec
// file it denotes, so previously submitted runs answer from cache and the
// batch's misses warm the cache for later single-run submissions.  A fully
// cached batch costs no worker slot; otherwise the batch occupies one
// admission slot and runs its misses over a shared Session, where eligible
// two-color ensembles step 64 replicas per word on the bit-sliced tier —
// which cannot change a single byte of any Result (the tier is bit-exact
// and emulates the scalar path's metadata), so cache entries written here
// are indistinguishable from /v1/runs ones.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	bs, err := dynmon.ParseBatchSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	digests := make([]string, len(bs.Items))
	for i := range bs.Items {
		if digests[i], err = bs.ItemDigest(i); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	// Per-item cache lookups before admission, so a fully cached batch costs
	// no worker slot.
	items := make([]batchItem, len(bs.Items))
	var misses []int
	for i, d := range digests {
		items[i] = batchItem{Digest: d}
		if v, ok := s.results.Get(d); ok {
			s.metrics.CacheHits.Add(1)
			items[i].Cached = true
			items[i].Result = v.(*cachedResult).json
		} else {
			s.metrics.CacheMisses.Add(1)
			misses = append(misses, i)
		}
	}

	if len(misses) > 0 {
		release, err := s.acquire(r.Context())
		if err != nil {
			s.admissionError(w, err)
			return
		}
		defer release()
		ctx, cancel := s.runContext(r.Context())
		defer cancel()

		sysDigest, err := bs.System.Digest()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		sys, err := s.systemFor(sysDigest, &bs.System)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		target := bs.Run.Target
		if target == dynmon.None {
			target = 1
		}
		initials := make([]*dynmon.Coloring, len(misses))
		for j, i := range misses {
			cons, err := sys.BuildInitial(&bs.Items[i], target)
			if err != nil {
				httpError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
			initials[j] = cons.Coloring
		}
		s.metrics.RunsStarted.Add(int64(len(misses)))
		results, err := sys.NewSession(s.cfg.Workers).RunBatch(ctx, initials, dynmon.WithRunSpec(bs.Run))
		if err != nil {
			s.metrics.RunsFailed.Add(int64(len(misses)))
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		for j, i := range misses {
			b, merr := s.settleInline(results[j], true, digests[i])
			if merr != nil {
				httpError(w, http.StatusInternalServerError, merr.Error())
				return
			}
			items[i].Result = b
		}
	}

	writeJSON(w, http.StatusOK, struct {
		Results []batchItem `json:"results"`
	}{items})
}
