// Integration tests that exercise the public dynmon façade end to end,
// crossing every package boundary the way the examples and command-line
// tools do.
package repro_test

import (
	"context"
	"strings"
	"testing"

	"repro/dynmon"
	"repro/internal/analysis"
	"repro/internal/color"
	"repro/internal/dynamo"
	"repro/internal/graphs"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/tvg"
)

// TestEndToEndAllTopologies runs the complete pipeline — construction,
// condition check, simulation, timing matrix, report — for all three
// topologies and several sizes, checking the paper's headline claims.
func TestEndToEndAllTopologies(t *testing.T) {
	for _, topology := range []string{"mesh", "cordalis", "serpentinus"} {
		for _, size := range [][2]int{{6, 6}, {9, 7}, {12, 12}} {
			sys, err := dynmon.New(dynmon.WithTopology(topology, size[0], size[1]), dynmon.Colors(5))
			if err != nil {
				t.Fatal(err)
			}
			cons, err := sys.MinimumDynamo(1)
			if err != nil {
				t.Fatalf("%s %v: %v", topology, size, err)
			}
			rep := sys.Verify(cons)
			if !rep.IsDynamo || !rep.Monotone || !rep.ConditionsOK {
				t.Errorf("%s %v: %s", topology, size, rep.Summary())
			}
			if rep.SeedSize != sys.LowerBound() {
				t.Errorf("%s %v: seed %d != bound %d", topology, size, rep.SeedSize, sys.LowerBound())
			}
			matrix, rendered := sys.TimingMatrix(cons.Coloring, 1)
			if len(matrix) != size[0] || rendered == "" {
				t.Errorf("%s %v: timing matrix malformed", topology, size)
			}
			// The maximum recoloring time equals the reported round count.
			if analysis.MatrixMax(matrix) != rep.Rounds {
				t.Errorf("%s %v: matrix max %d != rounds %d", topology, size, analysis.MatrixMax(matrix), rep.Rounds)
			}
		}
	}
}

// TestHeadlineFigures asserts the two figure matrices that the paper prints
// in full are reproduced exactly.
func TestHeadlineFigures(t *testing.T) {
	cross, err := dynamo.FullCross(5, 5, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	m5, _ := analysis.TimingMatrix(cross.Topology, cross.Coloring, 1)
	if !analysis.MatricesEqual(m5, analysis.Figure5Reference()) {
		t.Error("Figure 5 not reproduced")
	}
	cord, err := dynamo.CordalisMinimum(5, 5, 1, color.MustPalette(6))
	if err != nil {
		t.Fatal(err)
	}
	m6, _ := analysis.TimingMatrix(cord.Topology, cord.Coloring, 1)
	if !analysis.MatricesEqual(m6, analysis.Figure6Reference()) {
		t.Error("Figure 6 not reproduced")
	}
	for fig := 1; fig <= 6; fig++ {
		out, err := dynmon.Figure(fig)
		if err != nil || !strings.Contains(out, "Figure") {
			t.Errorf("figure %d rendering failed: %v", fig, err)
		}
	}
}

// TestCrossPackageConsistency checks that independent code paths agree: the
// torus engine and the general-graph engine on the converted torus, and the
// static engine and the time-varying engine with full availability.
func TestCrossPackageConsistency(t *testing.T) {
	cons, err := dynamo.MeshMinimum(8, 8, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	static := dynamo.Verify(cons)

	// The time-varying run mode with AlwaysOn must agree exactly, through
	// the public TimeVarying run option.
	tvSys, err := dynmon.New(dynmon.Mesh(8, 8), dynmon.Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	tv, err := tvSys.Run(context.Background(), cons.Coloring,
		dynmon.TimeVarying(tvg.AlwaysOn{}), dynmon.StopWhenMonochromatic())
	if err != nil {
		t.Fatal(err)
	}
	if !tv.Monochromatic || tv.Rounds != static.Rounds {
		t.Errorf("TimeVarying AlwaysOn disagrees with the static engine: %d vs %d rounds", tv.Rounds, static.Rounds)
	}

	// General-graph engine on the converted torus must reach the same
	// monochromatic configuration (round counts agree because the
	// generalized rule coincides with SMP on degree-4 neighborhoods).
	g := graphs.FromTorus(cons.Topology)
	init := graphs.NewColoring(g.N(), 0)
	for v := 0; v < g.N(); v++ {
		init.Set(v, cons.Coloring.At(v))
	}
	res := graphs.Run(g, graphs.GeneralizedSMP{}, init, 1, 500)
	if res.TargetCount != g.N() {
		t.Errorf("graph engine reached %d/%d vertices", res.TargetCount, g.N())
	}
}

// TestLowerBoundStoryEndToEnd ties the Theorem 1 narrative together: the
// construction meets the bound, undersized structured seeds fail, and the
// documented small-torus counterexample is reproducible through the search
// package.
func TestLowerBoundStoryEndToEnd(t *testing.T) {
	topo := grid.MustNew(grid.KindToroidalMesh, 8, 8)
	bound := dynamo.LowerBound(grid.KindToroidalMesh, topo.Dims())

	cons, err := dynamo.MeshMinimum(8, 8, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	if cons.SeedSize() != bound {
		t.Fatalf("construction size %d != bound %d", cons.SeedSize(), bound)
	}
	under, err := dynamo.UndersizedSeed(8, 8, 1, color.MustPalette(5))
	if err != nil {
		t.Fatal(err)
	}
	if dynamo.Verify(under).IsDynamo {
		t.Error("undersized structured seed must not be a dynamo")
	}
	small := grid.MustNew(grid.KindToroidalMesh, 4, 4)
	found := search.RandomDynamo(small, 5, 1, color.MustPalette(5),
		search.Options{Trials: 2000, RequireMonotone: true, Seed: 3})
	if found == nil {
		t.Error("the 4x4 sub-bound counterexample should be reproducible")
	}
}

// TestDeterministicReproduction re-runs a slice of the pipeline twice and
// demands identical outputs, the property EXPERIMENTS.md relies on.
func TestDeterministicReproduction(t *testing.T) {
	run := func() string {
		sys, err := dynmon.New(dynmon.Mesh(10, 10), dynmon.Colors(5))
		if err != nil {
			t.Fatal(err)
		}
		cons, err := sys.MinimumDynamo(2)
		if err != nil {
			t.Fatal(err)
		}
		_, rendered := sys.TimingMatrix(cons.Coloring, 2)
		return cons.Coloring.String() + "\n" + rendered
	}
	if run() != run() {
		t.Error("the pipeline is not deterministic")
	}
	src1 := rng.New(5)
	src2 := rng.New(5)
	g1, _ := graphs.NewBarabasiAlbert(100, 2, src1)
	g2, _ := graphs.NewBarabasiAlbert(100, 2, src2)
	if g1.EdgeCount() != g2.EdgeCount() {
		t.Error("graph generation is not deterministic")
	}
}

// TestSteppersAgreeEndToEnd pins the engine rebuild at the façade level:
// batched frontier runs, one-at-a-time frontier runs and full-sweep oracle
// runs must reach identical verdicts on the paper's constructions.
func TestSteppersAgreeEndToEnd(t *testing.T) {
	sys, err := dynmon.New(dynmon.Mesh(9, 9), dynmon.Colors(5))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := sys.MinimumDynamo(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	front, err := sys.Run(ctx, cons.Coloring, dynmon.Target(1), dynmon.StopWhenMonochromatic())
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := sys.Run(ctx, cons.Coloring, dynmon.Target(1), dynmon.StopWhenMonochromatic(), dynmon.FullSweep())
	if err != nil {
		t.Fatal(err)
	}
	if front.Rounds != sweep.Rounds || !front.Final.Equal(sweep.Final) || front.MonotoneTarget != sweep.MonotoneTarget {
		t.Fatal("frontier and full-sweep verdicts diverged on the Theorem 2 construction")
	}
	batch, err := sys.NewSession(4).RunBatch(ctx, []*dynmon.Coloring{cons.Coloring, cons.Coloring},
		dynmon.Target(1), dynmon.StopWhenMonochromatic())
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range batch {
		if res.Rounds != sweep.Rounds || !res.Final.Equal(sweep.Final) {
			t.Fatalf("batch item %d diverged from the oracle", i)
		}
	}
}
